package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/register"
	"repro/internal/sem"
)

// gateStream is the incremental form of qualityGate: slices are pushed
// one at a time in stack order and emitted downstream — screened,
// classified and repaired — as soon as their verdict can no longer
// change, holding only a bounded window of raw slices instead of the
// whole stack.
//
// The contract is byte-identity with the barrier gate, repair for
// repair, counter for counter. The barrier detectors are already
// local — each reads its slice, its neighbors within a fixed horizon,
// or the unflagged subsequence walked in ascending order — so the
// incremental gate runs the *same detector bodies* in the same order
// per slice and differs only in when it is allowed to run them. Four
// monotone frontiers stage the finality:
//
//	walk   — detector 4's unflagged-subsequence walk, advanced while
//	         its lookahead (next plus next-next healthy slice, or end
//	         of stack) has arrived;
//	d5     — detector 5 (curtaining) runs on slice d5 once its flag
//	         state is walk-final and the nearest unflagged right
//	         neighbor is known;
//	d6     — detector 6 (MI catch-all) runs on slice d6 once every
//	         pair MI in its local window is settled (d5 has passed
//	         the window, or the stack ended);
//	emit   — slices leave in ascending order once detector-final
//	         (d6 has passed them) and, for flagged slices, once the
//	         nearest unflagged right neighbor needed for repair is
//	         itself final.
//
// Each frontier only consumes state produced by the previous one, so a
// single forward pass over the chain (pump) after every arrival drains
// everything that became ready. Raw slices are released (nilled) once
// no detector or repair can still read them: the last emitted unflagged
// slice is retained as the left repair neighbor, everything older is
// dropped.
//
// One subtlety is hidden in flag bookkeeping: the barrier's detector 5
// scans for "nearest unflagged neighbor" *before* detector 6 has
// flagged anything, while the incremental gate necessarily interleaves
// the two. flag5 therefore tracks the detector 1-5 view of the stack
// (what the barrier's detector 5 and MI passes see) separately from
// flagged, the combined view that detector 6, the repairs and the
// report use.
type gateStream struct {
	o          Options
	q          QualityOptions
	n          int
	noiseFloor float64
	emit       func(i int, g *img.Gray) error

	raw     []*img.Gray // windowed: nil once released
	feats   []sliceFeatures
	flag5   []fault.Kind // detector 1-5 flags (the barrier det-5/MI view)
	flagged []fault.Kind // detector 1-6 flags (the repair/report view)
	metric  []float64

	healthy  []int // detector 4's unflagged subsequence
	t        int   // walk position in healthy
	cleared  []bool
	walkDone bool

	arrived int
	d5      int
	miPtr   int
	d6      int
	emitted int

	mis           []gatePairMI
	lastUnflagged int

	rep RepairReport
}

type gatePairMI struct {
	mi    float64
	valid bool
}

// newGateStream prepares the gate for an n-slice stack. dwellUS is the
// acquisition dwell time the shot-noise floor derives from (the barrier
// gate reads it from acq.Options; the streaming producer passes its own
// SEM options).
func newGateStream(o Options, n int, dwellUS float64, emit func(int, *img.Gray) error) *gateStream {
	if dwellUS <= 0 {
		dwellUS = sem.DefaultOptions().DwellUS
	}
	s := &gateStream{
		o:          o,
		q:          o.Quality.withDefaults(),
		n:          n,
		noiseFloor: sem.NoiseSigma(dwellUS),
		emit:       emit,
		raw:        make([]*img.Gray, n),
		feats:      make([]sliceFeatures, n),
		flag5:      make([]fault.Kind, n),
		flagged:    make([]fault.Kind, n),
		metric:     make([]float64, n),
		cleared:    make([]bool, n),
		t:          1,
		lastUnflagged: -1,
		rep:        RepairReport{Checked: n},
	}
	if n >= 2 {
		s.mis = make([]gatePairMI, n-1)
	}
	return s
}

// push feeds slice i (they must arrive in ascending order) and emits
// every slice whose verdict became final. Stacks below the barrier
// gate's minimum (n < 3) pass straight through, exactly as the barrier
// returns them untouched and unvalidated.
func (s *gateStream) push(i int, g *img.Gray) error {
	if s.n < 3 {
		return s.emit(i, g)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("core: quality gate: %w",
			fmt.Errorf("core: quality gate slice %d: %w", i, err))
	}
	s.raw[i] = g
	s.feats[i] = features(g, s.q.SatLevel)
	// Detectors 1-3 are pure per-slice tests; running them at arrival
	// in the barrier's detector order (first detector wins) reproduces
	// its classification exactly.
	if f := s.feats[i]; f.constRows > 0 {
		s.flag(i, fault.KindDetectorDropout, float64(f.constRows))
	}
	if f := s.feats[i]; f.satFrac >= s.q.SatFrac {
		s.flag(i, fault.KindChargingFlare, f.satFrac)
	}
	if f := s.feats[i]; f.std < s.q.DropNoiseFactor*s.noiseFloor {
		s.flag(i, fault.KindDroppedSlice, f.std)
	}
	if s.flag5[i] == fault.KindNone {
		if len(s.healthy) == 0 {
			// The walk never tests its first element.
			s.cleared[i] = true
		}
		s.healthy = append(s.healthy, i)
	}
	s.arrived++
	return s.pump()
}

// finish drains the gate after the last push and validates that every
// slice left. The repair counter mirrors the barrier's unconditional
// Count (it creates the counter key even on a clean stack).
func (s *gateStream) finish() error {
	if s.n < 3 {
		return nil
	}
	if err := s.pump(); err != nil {
		return err
	}
	if s.emitted != s.n {
		return fmt.Errorf("core: quality gate: stream stalled at slice %d of %d", s.emitted, s.n)
	}
	s.o.Obs.Count("quality.repaired", int64(len(s.rep.Repairs)))
	return nil
}

// flag records the first verdict for slice i in both flag views, with
// the barrier's counter and debug line.
func (s *gateStream) flag(i int, k fault.Kind, m float64) {
	if s.flagged[i] != fault.KindNone {
		return
	}
	s.flag5[i], s.flagged[i], s.metric[i] = k, k, m
	s.o.Obs.Count("quality.detect."+k.String(), 1)
	s.o.Obs.Debug("quality gate flagged", "slice", i, "kind", k.String(), "metric", m)
}

// flag6 records a detector-6 verdict: visible to repairs and the
// report, invisible to the detector-5 view (flag5), which the barrier
// froze before its detector 6 ran.
func (s *gateStream) flag6(i int, m float64) {
	if s.flagged[i] != fault.KindNone {
		return
	}
	s.flagged[i], s.metric[i] = fault.KindUnknown, m
	s.o.Obs.Count("quality.detect."+fault.KindUnknown.String(), 1)
	s.o.Obs.Debug("quality gate flagged", "slice", i, "kind", fault.KindUnknown.String(), "metric", m)
}

// pump advances every frontier once, in dependency order. Each stage
// reads only earlier stages' output, so one forward pass drains all
// work that the newest arrival unlocked.
func (s *gateStream) pump() error {
	s.advanceWalk()
	s.advanceDet5()
	if err := s.advanceMI(); err != nil {
		return err
	}
	s.advanceDet6()
	return s.advanceEmit()
}

func gateRowsOf(f sliceFeatures) []float64 { return f.rowMean }
func gateColsOf(f sliceFeatures) []float64 { return f.colNorm }

func (s *gateStream) axisShift(ax func(sliceFeatures) []float64, a, b int) (float64, float64) {
	d, c := profileShift(ax(s.feats[a]), ax(s.feats[b]), s.q.BurstProbePx)
	return float64(d), c
}

// displacement is the barrier gate's detector-4 estimator verbatim (see
// qualityGate for the voting and veto rationale).
func (s *gateStream) displacement(ax func(sliceFeatures) []float64, p, i, sn, ss int) float64 {
	vIn, cin := s.axisShift(ax, p, i)
	dOut, cout := s.axisShift(ax, i, sn)
	vOut := -dOut
	agree := math.Abs(vIn-vOut) <= 1
	switch {
	case cin >= s.q.BurstMinCorr:
		if cout >= s.q.BurstVetoCorr && math.Abs(vOut) <= 1 && !agree {
			return 0
		}
		return vIn
	case cout >= s.q.BurstMinCorr:
		if cin >= s.q.BurstVetoCorr && math.Abs(vIn) <= 1 && !agree {
			return 0
		}
		if ss >= 0 && math.Abs(dOut) > 1 {
			dRet, cRet := s.axisShift(ax, sn, ss)
			if cRet >= s.q.BurstVetoCorr && math.Abs(-dRet-dOut) <= 1 {
				return 0
			}
		}
		return vOut
	}
	return 0
}

// advanceWalk runs detector 4's subsequence walk as far as the arrived
// suffix allows. A test at position t needs healthy[t+1] and — to know
// whether healthy[t+2] exists and what it is — either that element or
// the end of the stack; until then the walk waits, so every executed
// test sees exactly the operands the barrier walk would.
func (s *gateStream) advanceWalk() {
	if s.walkDone {
		return
	}
	for s.t+1 < len(s.healthy) && (s.t+2 < len(s.healthy) || s.arrived == s.n) {
		p, i, sn := s.healthy[s.t-1], s.healthy[s.t], s.healthy[s.t+1]
		ss := -1
		if s.t+2 < len(s.healthy) {
			ss = s.healthy[s.t+2]
		}
		resY := math.Abs(s.displacement(gateRowsOf, p, i, sn, ss))
		resX := math.Abs(s.displacement(gateColsOf, p, i, sn, ss))
		if resY >= s.q.BurstDY || resX >= s.q.BurstDX {
			s.flag(i, fault.KindDriftBurst, math.Max(resY, resX))
			s.healthy = append(s.healthy[:s.t], s.healthy[s.t+1:]...)
			continue
		}
		s.cleared[i] = true
		s.t++
	}
	if s.arrived == s.n && s.t+1 >= len(s.healthy) {
		s.walkDone = true
	}
}

// det4Final reports that detector 4 can no longer flag slice i: it is
// already flagged, the walk passed it, or the walk finished. (The walk
// only removes elements at or after its position, so a cleared slice
// stays cleared.)
func (s *gateStream) det4Final(i int) bool {
	if i >= s.arrived {
		return false
	}
	return s.flag5[i] != fault.KindNone || s.cleared[i] || s.walkDone
}

// advanceDet5 runs detector 5 (curtaining) on each slice in ascending
// order once its own flag state is walk-final and its nearest unflagged
// right neighbor is known — i.e. every right slice up to and including
// the first unflagged one is walk-final too. Left neighbors are final
// by construction (d5 already passed them).
func (s *gateStream) advanceDet5() {
	for s.d5 < s.n && s.det5Ready(s.d5) {
		i := s.d5
		if s.flag5[i] == fault.KindNone {
			s.det5At(i)
		}
		s.d5++
	}
}

func (s *gateStream) det5Ready(i int) bool {
	if !s.det4Final(i) {
		return false
	}
	if s.flag5[i] != fault.KindNone {
		return true
	}
	for j := i + 1; j < s.n; j++ {
		if !s.det4Final(j) {
			return false
		}
		if s.flag5[j] == fault.KindNone {
			return true
		}
	}
	return true
}

// det5At is the barrier's detector-5 body verbatim, against the
// detector 1-5 flag view.
func (s *gateStream) det5At(i int) {
	ref := neighborColMin(s.feats, s.flag5, i)
	if ref == nil {
		return
	}
	damaged, cols := 0, 0
	for x := range ref {
		if ref[x] < s.q.CurtainMinCol {
			continue
		}
		cols++
		if s.feats[i].colNorm[x] < s.q.CurtainResid*ref[x] {
			damaged++
		}
	}
	if cols == 0 {
		return
	}
	if frac := float64(damaged) / float64(cols); frac >= s.q.CurtainColFrac {
		s.flag(i, fault.KindCurtaining, frac)
	}
}

// advanceMI settles pair MIs in ascending order. Pair j's validity
// depends on the detector 1-5 flags of j and j+1, final once d5 has
// passed j+1. Running before advanceDet6 in pump keeps the raw-slice
// reads ahead of detector 6 exactly as in the barrier (MI pass between
// detectors 5 and 6).
func (s *gateStream) advanceMI() error {
	for s.miPtr < s.n-1 && s.d5 >= s.miPtr+2 {
		j := s.miPtr
		if s.flag5[j] == fault.KindNone && s.flag5[j+1] == fault.KindNone {
			mi, err := register.MutualInformation(s.raw[j], s.raw[j+1], s.q.MIBins)
			if err != nil {
				return fmt.Errorf("core: quality gate: %w",
					fmt.Errorf("core: quality gate pair %d: %w", j, err))
			}
			s.mis[j] = gatePairMI{mi: mi, valid: true}
			s.o.Obs.Count("quality.mi_evals", 1)
		}
		s.miPtr++
	}
	return nil
}

// advanceDet6 runs the MI catch-all on each slice in ascending order
// once every pair in its local window [i-1-MIWindow, i+MIWindow] is
// settled: d5 (and hence miPtr) has passed the window's right edge, or
// the stack ended.
func (s *gateStream) advanceDet6() {
	for s.d6 < s.n && s.d6 < s.d5 && (s.d5 == s.n || s.d5 >= s.d6+s.q.MIWindow+2) {
		i := s.d6
		if s.flagged[i] == fault.KindNone {
			s.det6At(i)
		}
		s.d6++
	}
}

// det6At is the barrier's detector-6 body verbatim.
func (s *gateStream) det6At(i int) {
	var local []float64
	for j := i - 1 - s.q.MIWindow; j <= i+s.q.MIWindow; j++ {
		if j < 0 || j >= s.n-1 || j == i-1 || j == i || !s.mis[j].valid {
			continue
		}
		local = append(local, s.mis[j].mi)
	}
	if len(local) < 4 {
		return
	}
	sort.Float64s(local)
	floor := s.q.MIFloor * local[len(local)/2]
	low, pairs := true, 0
	worst := math.Inf(1)
	for _, j := range []int{i - 1, i} {
		if j < 0 || j >= s.n-1 || !s.mis[j].valid {
			continue
		}
		pairs++
		if s.mis[j].mi >= floor {
			low = false
		}
		if s.mis[j].mi < worst {
			worst = s.mis[j].mi
		}
	}
	if pairs > 0 && low {
		s.flag6(i, worst)
	}
}

// advanceEmit releases detector-final slices downstream in ascending
// order. Unflagged slices pass through by pointer; flagged slices are
// repaired from the nearest unflagged neighbors exactly as the barrier
// does — the left one is the last unflagged slice emitted (retained for
// this purpose), the right one must lie inside the detector-final
// prefix or be provably absent (d6 == n) before the repair can run.
func (s *gateStream) advanceEmit() error {
	for s.emitted < s.d6 {
		i := s.emitted
		if s.flagged[i] == fault.KindNone {
			g := s.raw[i]
			if s.lastUnflagged >= 0 {
				s.raw[s.lastUnflagged] = nil
			}
			s.lastUnflagged = i
			if err := s.emit(i, g); err != nil {
				return err
			}
			s.emitted++
			continue
		}
		j := s.lastUnflagged
		k := i + 1
		for k < s.n && k < s.d6 && s.flagged[k] != fault.KindNone {
			k++
		}
		if k < s.n && k == s.d6 {
			// The nearest unflagged right neighbor is not final yet.
			return nil
		}
		action := "none"
		var out *img.Gray
		switch {
		case j >= 0 && k < s.n:
			w := float64(k-i) / float64(k-j)
			g := img.New(s.raw[j].W, s.raw[j].H)
			for p := range g.Pix {
				g.Pix[p] = w*s.raw[j].Pix[p] + (1-w)*s.raw[k].Pix[p]
			}
			out = g
			action = fmt.Sprintf("interp(%d,%d)", j, k)
		case j >= 0:
			out = s.raw[j].Clone()
			action = fmt.Sprintf("copy(%d)", j)
		case k < s.n:
			out = s.raw[k].Clone()
			action = fmt.Sprintf("copy(%d)", k)
		default:
			// Every slice is flagged: nothing healthy to repair from.
			out = s.raw[i]
		}
		s.rep.Repairs = append(s.rep.Repairs, SliceRepair{
			Index: i, Kind: s.flagged[i], Metric: s.metric[i], Action: action,
		})
		s.o.Obs.Debug("quality gate repaired", "slice", i, "kind", s.flagged[i].String(), "action", action)
		s.raw[i] = nil
		if err := s.emit(i, out); err != nil {
			return err
		}
		s.emitted++
	}
	return nil
}
