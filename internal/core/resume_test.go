package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/chips"
	"repro/internal/ckpt"
	"repro/internal/obs"
)

// resumeOptions is a deliberately cheap configuration: resume tests run
// the pipeline many times over (baseline, populate, one resume per
// boundary per worker count) and only assert determinism, never
// extraction quality.
func resumeOptions() Options {
	o := fastOptions()
	o.Units = 1
	o.Denoise.Iterations = 8
	return o
}

// copyUpTo populates a fresh store with only the checkpoints of src
// whose stage is at or before boundary in CkptStages() order — the
// on-disk state of a run killed right after persisting that boundary.
func copyUpTo(t *testing.T, src *ckpt.Store, boundary string) *ckpt.Store {
	t.Helper()
	keep := map[string]bool{}
	for _, st := range CkptStages() {
		keep[st] = true
		if st == boundary {
			break
		}
	}
	dst, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries, err := src.Scan()
	if err != nil {
		t.Fatal(err)
	}
	copied := 0
	for _, e := range entries {
		if e.Err != nil {
			t.Fatalf("scan of populated store: %s: %v", e.Path, e.Err)
		}
		if !keep[e.Key.Stage] {
			continue
		}
		payload, state := src.Get(e.Key)
		if state != ckpt.StateHit {
			t.Fatalf("populated store: %v state %v", e.Key, state)
		}
		if err := dst.Put(e.Key, payload); err != nil {
			t.Fatal(err)
		}
		copied++
	}
	if copied == 0 {
		t.Fatalf("no checkpoints copied for boundary %q", boundary)
	}
	return dst
}

// TestResumeDeterministicAtEveryBoundary is the acceptance test for the
// checkpoint scheme: for every stage boundary, a run "killed" right
// after that boundary was persisted and then resumed — at several
// worker counts, including ones differing from the count that wrote the
// checkpoints — produces a Result identical to an uninterrupted run,
// down to the gob encoding of the extraction.
func TestResumeDeterministicAtEveryBoundary(t *testing.T) {
	chip := chips.ByID("B4")
	base := resumeOptions()

	want, err := Run(chip, base)
	if err != nil {
		t.Fatal(err)
	}
	var wantExt bytes.Buffer
	if err := gob.NewEncoder(&wantExt).Encode(want.Extraction); err != nil {
		t.Fatal(err)
	}

	// Populate a full checkpoint set at one worker count...
	populated, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	po := base
	po.Workers = 4
	po.Ckpt = populated
	if _, err := Run(chip, po); err != nil {
		t.Fatal(err)
	}

	// ...then resume from every truncation of it, at worker counts the
	// writer did not use.
	for _, boundary := range CkptStages() {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/workers=%d", boundary, workers), func(t *testing.T) {
				ro := base
				ro.Workers = workers
				ro.Ckpt = copyUpTo(t, populated, boundary)
				ro.Resume = true
				got, err := Run(chip, ro)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(stripTelemetry(got), stripTelemetry(want)) {
					t.Errorf("resume after %q differs from uninterrupted run", boundary)
				}
				var gotExt bytes.Buffer
				if err := gob.NewEncoder(&gotExt).Encode(got.Extraction); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotExt.Bytes(), wantExt.Bytes()) {
					t.Errorf("resume after %q: extraction gob bytes differ", boundary)
				}
			})
		}
	}
}

// TestResumeCorruptCheckpointRecomputed asserts the crash-safety
// contract end to end: a checksum-corrupted checkpoint is never served —
// the run counts it, recomputes the stage, produces an unchanged
// Result, and heals the store.
func TestResumeCorruptCheckpointRecomputed(t *testing.T) {
	chip := chips.ByID("B4")
	base := resumeOptions()
	want, err := Run(chip, base)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	po := base
	po.Ckpt = store
	if _, err := Run(chip, po); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte in the netex checkpoint — the first one a
	// resume consults.
	var netexPath string
	entries, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Key.Stage == CkptNetex {
			netexPath = e.Path
		}
	}
	if netexPath == "" {
		t.Fatal("no netex checkpoint written")
	}
	raw, err := os.ReadFile(netexPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(netexPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ro := base
	ro.Ckpt = store
	ro.Resume = true
	ro.Obs = &obs.Observer{Metrics: obs.NewMetrics()}
	got, err := Run(chip, ro)
	if err != nil {
		t.Fatal(err)
	}
	if got.Telemetry == nil {
		t.Fatal("no telemetry snapshot")
	}
	if n := got.Telemetry.Counters["ckpt.corrupt"]; n < 1 {
		t.Errorf("ckpt.corrupt = %d, want >= 1", n)
	}
	if !reflect.DeepEqual(stripTelemetry(got), stripTelemetry(want)) {
		t.Errorf("result after corrupt-checkpoint recompute differs from clean run")
	}
	// The recompute's save must have healed the entry.
	for _, e := range entries {
		if e.Key.Stage != CkptNetex {
			continue
		}
		if _, state := store.Get(e.Key); state != ckpt.StateHit {
			t.Errorf("netex checkpoint not healed after recompute: state %v", state)
		}
	}
}

// TestResumeUnreadableCheckpointRecomputed asserts the unreadable-vs-
// corrupt distinction end to end: a checkpoint whose read fails (here: a
// directory at the entry path, the deterministic stand-in for EACCES or
// a transient I/O error) is counted as "ckpt.unreadable" — not
// "ckpt.corrupt" — the stage recomputes, the Result is unchanged, and
// the entry is never deleted on that evidence.
func TestResumeUnreadableCheckpointRecomputed(t *testing.T) {
	chip := chips.ByID("B4")
	base := resumeOptions()
	want, err := Run(chip, base)
	if err != nil {
		t.Fatal(err)
	}

	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	po := base
	po.Ckpt = store
	if _, err := Run(chip, po); err != nil {
		t.Fatal(err)
	}
	var netexPath string
	entries, err := store.Scan()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Key.Stage == CkptNetex {
			netexPath = e.Path
		}
	}
	if netexPath == "" {
		t.Fatal("no netex checkpoint written")
	}
	if err := os.Remove(netexPath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(netexPath, 0o755); err != nil {
		t.Fatal(err)
	}

	ro := base
	ro.Ckpt = store
	ro.Resume = true
	ro.Obs = &obs.Observer{Metrics: obs.NewMetrics()}
	got, err := Run(chip, ro)
	if err != nil {
		t.Fatal(err)
	}
	if n := got.Telemetry.Counters["ckpt.unreadable"]; n < 1 {
		t.Errorf("ckpt.unreadable = %d, want >= 1", n)
	}
	if n := got.Telemetry.Counters["ckpt.corrupt"]; n != 0 {
		t.Errorf("unreadable entry miscounted as corrupt (%d)", n)
	}
	if !reflect.DeepEqual(stripTelemetry(got), stripTelemetry(want)) {
		t.Errorf("result after unreadable-checkpoint recompute differs from clean run")
	}
	// The unreadable entry must survive: deleting it on a read failure
	// would turn a permissions hiccup into data loss. (The best-effort
	// re-save cannot replace a directory, so the path must still be one.)
	if fi, err := os.Stat(netexPath); err != nil || !fi.IsDir() {
		t.Errorf("unreadable entry was removed or replaced (err=%v)", err)
	}
}

// TestResumeIgnoresForeignFingerprint asserts the keying contract: a
// checkpoint written under different result-affecting options must
// never be loaded, even with Resume set — the fingerprint separates the
// keyspaces and the run recomputes from scratch.
func TestResumeIgnoresForeignFingerprint(t *testing.T) {
	chip := chips.ByID("B4")
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	po := resumeOptions()
	po.Ckpt = store
	if _, err := Run(chip, po); err != nil {
		t.Fatal(err)
	}

	// Different dwell time → different acquisition → different keys.
	ro := resumeOptions()
	ro.SEM.DwellUS = po.SEM.DwellUS * 2
	ro.Ckpt = store
	ro.Resume = true
	ro.Obs = &obs.Observer{Metrics: obs.NewMetrics()}
	got, err := Run(chip, ro)
	if err != nil {
		t.Fatal(err)
	}
	if n := got.Telemetry.Counters["ckpt.hit"]; n != 0 {
		t.Errorf("run with different options hit %d foreign checkpoints", n)
	}
	if n := got.Telemetry.Counters["ckpt.miss"]; n < 1 {
		t.Errorf("expected misses on foreign fingerprint, got %d", n)
	}
}

// TestFingerprintSeparatesPyramid pins the checkpoint contract for the
// coarse-to-fine search option: Register.Pyramid is result-affecting
// (the selected shifts may differ from exhaustive), so it must change
// the fingerprint — a resumed run never loads artifacts computed under
// a different search strategy — while worker count still must not.
func TestFingerprintSeparatesPyramid(t *testing.T) {
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultOptions()
	base.Ckpt = store
	ref, err := newCkptRef("B4", base)
	if err != nil {
		t.Fatal(err)
	}
	pyr := base
	pyr.Register.Pyramid = 3
	pyrRef, err := newCkptRef("B4", pyr)
	if err != nil {
		t.Fatal(err)
	}
	if ref.fp == pyrRef.fp {
		t.Errorf("Pyramid option must change the checkpoint fingerprint")
	}
	par := base
	par.Workers = 7
	par.Register.Workers = 3
	parRef, err := newCkptRef("B4", par)
	if err != nil {
		t.Fatal(err)
	}
	if ref.fp != parRef.fp {
		t.Errorf("worker counts must not change the checkpoint fingerprint")
	}
}

// TestRunCtxCancelled asserts prompt cooperative cancellation: a
// pre-cancelled context fails fast and the error unwraps to the
// context's own error.
func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, chips.ByID("B4"), resumeOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCtxCancelMidRun cancels shortly after the run starts — while
// acquisition or the denoise fan-out is in flight, both far longer than
// the cancel delay — and asserts the run aborts with the context error
// instead of completing.
func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := resumeOptions()
	o.Workers = 2
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err := RunCtx(ctx, chips.ByID("B4"), o)
	if err == nil {
		t.Fatal("cancelled run completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStandaloneReconstructNoUnitNoCheckpoints asserts the safety rule
// for direct ReconstructCtx callers: without CkptUnit the store is
// never touched, because the options alone cannot reproduce an
// arbitrary acquisition.
func TestStandaloneReconstructNoUnitNoCheckpoints(t *testing.T) {
	acq, window := testAcquisition(t)
	dir := t.TempDir()
	store, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.Denoiser = "none"
	o.Ckpt = store
	o.Resume = true
	if _, _, err := ReconstructCtx(context.Background(), acq, window, o); err != nil {
		t.Fatal(err)
	}
	var files []string
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".ckpt") {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("standalone Reconstruct without CkptUnit wrote checkpoints: %v", files)
	}
}

// TestPlanarViewsResume asserts the views boundary round-trips: a
// second PlanarViews call resumes from the first one's checkpoint and
// returns identical images.
func TestPlanarViewsResume(t *testing.T) {
	acq, _ := testAcquisition(t)
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := fastOptions()
	o.Denoiser = "none"
	o.Ckpt = store
	o.CkptUnit = "test/planar"
	want, err := PlanarViews(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Resume = true
	o.Obs = &obs.Observer{Metrics: obs.NewMetrics()}
	got, err := PlanarViews(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed planar views differ")
	}
	if n := o.Obs.Snapshot().Counters["ckpt.resumed."+CkptViews]; n != 1 {
		t.Errorf("ckpt.resumed.views = %d, want 1", n)
	}
}
