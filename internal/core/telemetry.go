package core

// Canonical pipeline stage names: the spans a traced Run emits, in
// execution order. RunOnDie additionally emits "roi" (between generate
// and acquire), Run with Options.Faults emits "inject" (after acquire),
// and an aligned reconstruction emits an "align/residual" estimate span
// — none of which are part of the canonical set, because they are
// conditional.
const (
	StageGenerate    = "generate"
	StageAcquire     = "acquire"
	StageInject      = "inject"
	StageROI         = "roi"
	StageQualityGate = "quality-gate"
	StageDenoise     = "denoise"
	StageAlign       = "align"
	StageAssemble    = "assemble"
	StageReslice     = "reslice"
	StageSegment     = "segment"
	StageNetex       = "netex"
	StageMeasure     = "measure"
	StageScore       = "score"
)

// Stages returns the canonical stage names every default-configured
// traced Run produces, in execution order. Tools validating a trace
// (hifidram tracecheck, the trace-smoke CI target) require exactly this
// set; conditional spans (inject, roi, align/residual) may appear in
// addition.
func Stages() []string {
	return []string{
		StageGenerate, StageAcquire, StageQualityGate, StageDenoise,
		StageAlign, StageAssemble, StageReslice, StageSegment,
		StageNetex, StageMeasure, StageScore,
	}
}
