package core

import (
	"testing"

	"repro/internal/chips"
)

func TestRunOnDieFullFlow(t *testing.T) {
	// The complete Fig. 5 workflow: blind ROI identification on a full
	// die strip (row drivers, MATs, SA region), then acquisition and
	// extraction of only the identified region.
	o := fastOptions()
	res, err := RunOnDie(chips.ByID("B4"), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ROIOverlap < 0.9 {
		t.Errorf("ROI IoU %.2f, want >= 0.9 (found %v vs true %v)",
			res.ROIOverlap, res.ROI, res.TrueROI)
	}
	p := res.Pipeline
	if !p.Score.TopologyCorrect {
		t.Errorf("die-level extraction lost the topology: %s", p.Score.Summary())
	}
	if !p.Score.BitlinesCorrect {
		t.Errorf("bitlines = %d, want %d", p.Extraction.Bitlines, p.Truth.Bitlines)
	}
	if len(p.Score.MissingElements) > 0 {
		t.Errorf("missing elements: %v", p.Score.MissingElements)
	}
	if p.Score.MeanRelErr > 0.3 {
		t.Errorf("dimension error %.1f%%", 100*p.Score.MeanRelErr)
	}
}

func TestRunOnDieNilChip(t *testing.T) {
	if _, err := RunOnDie(nil, fastOptions()); err == nil {
		t.Errorf("nil chip should error")
	}
}

func TestRotationSurrogateTrendDrift(t *testing.T) {
	// A consistent per-slice drift trend is the planar-shear artifact a
	// mis-oriented sample produces (the paper's final rotation
	// correction). Sequential MI alignment removes it: extraction still
	// succeeds with a strong systematic trend plus random drift.
	o := fastOptions()
	o.SEM.DriftSigmaPx = 0.4
	o.SEM.DriftTrendPx = 0.3
	res, err := Run(chips.ByID("B4"), o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Score.TopologyCorrect || len(res.Score.MissingElements) > 0 {
		t.Errorf("trend drift broke extraction: %s", res.Score.Summary())
	}
}
