package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/netex"
	"repro/internal/obs"
	"repro/internal/sem"
)

// ckptSchema versions the gob artifact encoding on top of the store's
// own on-disk format version. It is folded into the key fingerprint, so
// bumping it (after changing an artifact struct) silently retires every
// old checkpoint instead of mis-decoding it. v2: netexArtifact carries
// the segmentation Plan so Result.Plan survives a netex-boundary resume.
const ckptSchema = 2

// Checkpointed stage-boundary names, in pipeline order. "views" is
// produced only by PlanarViews; the others by Run/RunOnDie. Kill a run
// between any two and resume recomputes only from the last completed
// boundary.
const (
	CkptAcquire = "acquire"
	CkptAligned = "aligned"
	CkptPlan    = "plan"
	CkptNetex   = "netex"
	CkptViews   = "views"
)

// CkptStages returns the checkpoint boundaries of a standard Run, in
// execution order — the table the resume-determinism tests and the
// crash harness iterate over.
func CkptStages() []string {
	return []string{CkptAcquire, CkptAligned, CkptPlan, CkptNetex}
}

// acquireArtifact checkpoints the acquisition boundary: the raw stack
// after optional fault injection, plus the injection ground truth the
// Result surfaces.
type acquireArtifact struct {
	Acq      *sem.Acquisition
	Injected *fault.Report
}

// alignedArtifact checkpoints the end of preprocessing: the screened,
// denoised, aligned stack and everything the robustness machinery
// observed producing it.
type alignedArtifact struct {
	Slices          []*img.Gray
	DidAlign        bool
	Repairs         RepairReport
	AlignFallbacks  int
	ResidualDriftPx float64
}

// planArtifact checkpoints the segmentation boundary: the per-layer
// rectangle plan plus the reconstruction report it rode in on.
type planArtifact struct {
	Plan *netex.Plan
	Info ReconInfo
}

// netexArtifact checkpoints the extraction boundary: everything Run
// needs to rebuild its Result without touching the imaging stages
// (measurement and scoring are cheap and always recomputed).
type netexArtifact struct {
	Ext        *netex.Result
	Plan       *netex.Plan
	Info       ReconInfo
	Injected   *fault.Report
	SliceCount int
	CostHours  float64
}

// viewsArtifact checkpoints PlanarViews' per-layer images.
type viewsArtifact struct {
	Views map[string]*img.Gray
}

// ckptRef is the resolved checkpoint binding for one run: the store,
// the unit/fingerprint key prefix, and whether loading is enabled. A
// nil *ckptRef disables checkpointing entirely (the no-store path costs
// one nil check per boundary).
type ckptRef struct {
	store  *ckpt.Store
	unit   string
	fp     string
	resume bool
	obs    *obs.Observer
}

// fpOptions is the fingerprint input: the schema version plus a
// sanitized Options copy. Everything that cannot influence the artifact
// bytes — worker counts, observability sinks, the checkpoint wiring
// itself — is zeroed, so a resumed run hits the same keys at any worker
// count and with any tracing flags.
type fpOptions struct {
	Schema int
	Opts   Options
}

// FingerprintOptions canonicalizes the result-affecting options into
// the content-addressed fingerprint every checkpoint key carries.
// Everything that cannot influence the artifact bytes — worker counts,
// observability sinks, the checkpoint wiring itself — is zeroed first,
// so equal work shares keys across worker counts and tracing flags.
// The serve layer uses the same fingerprint to key its result cache,
// which is what lets identical job submissions dedupe to a single
// computation and share the stage checkpoints of the run that did it.
// Callers comparing against a Run's keys must resolve the detector
// first (RunCtx sets o.SEM.Detector from the chip before keying).
func FingerprintOptions(o Options) (string, error) {
	clean := o
	clean.Workers = 0
	clean.Obs = nil
	clean.Ckpt = nil
	clean.Resume = false
	clean.CkptUnit = ""
	clean.Denoise.Obs = nil
	clean.Register.Obs = nil
	clean.Register.Workers = 0
	// The streaming/barrier switch, window and pool change scheduling
	// and allocation only, never artifact bytes — the two paths are
	// byte-identical by contract — so both modes share checkpoint keys
	// (and the pool, holding runtime state, must never reach gob).
	clean.Barrier = false
	clean.StreamWindow = 0
	clean.Pool = nil
	fp, err := ckpt.Fingerprint(fpOptions{Schema: ckptSchema, Opts: clean})
	if err != nil {
		return "", fmt.Errorf("core: checkpoint fingerprint: %w", err)
	}
	return fp, nil
}

// newCkptRef binds o's store to a unit, or returns nil when
// checkpointing is off. The unit must uniquely identify the pipeline
// input under the fingerprinted options (Run uses the chip ID; see
// Options.CkptUnit for the standalone-Reconstruct contract).
func newCkptRef(unit string, o Options) (*ckptRef, error) {
	if o.Ckpt == nil || unit == "" {
		return nil, nil
	}
	fp, err := FingerprintOptions(o)
	if err != nil {
		return nil, err
	}
	return &ckptRef{store: o.Ckpt, unit: unit, fp: fp, resume: o.Resume, obs: o.Obs}, nil
}

func (c *ckptRef) key(stage string) ckpt.Key {
	return ckpt.Key{Unit: c.unit, Fingerprint: c.fp, Stage: stage}
}

// load decodes the checkpoint for stage into v and reports whether the
// stage can be skipped. Loading happens only under Resume; any
// anomaly — missing file, torn write, checksum mismatch, stale version,
// undecodable payload, unreadable file — counts into the telemetry
// ("ckpt.miss", "ckpt.corrupt" or "ckpt.unreadable") and returns false
// so the caller recomputes. A corrupt entry is therefore never served,
// only replaced by the save that follows the recompute; an unreadable
// one (permissions, transient I/O) is counted separately because its
// validity is unknown — it too is recomputed, but a later run whose
// read succeeds may still serve it.
func (c *ckptRef) load(stage string, v any) bool {
	if c == nil || !c.resume {
		return false
	}
	payload, state := c.store.Get(c.key(stage))
	switch state {
	case ckpt.StateMiss:
		c.obs.Count("ckpt.miss", 1)
		return false
	case ckpt.StateCorrupt:
		c.obs.Count("ckpt.corrupt", 1)
		c.obs.Info("checkpoint corrupt, recomputing", "unit", c.unit, "stage", stage)
		return false
	case ckpt.StateUnreadable:
		c.obs.Count("ckpt.unreadable", 1)
		c.obs.Info("checkpoint unreadable, recomputing", "unit", c.unit, "stage", stage)
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		// The checksum passed but the gob payload does not decode into
		// the artifact struct — schema drift the fingerprint failed to
		// capture. Treat exactly like corruption: count and recompute.
		c.obs.Count("ckpt.corrupt", 1)
		c.obs.Info("checkpoint undecodable, recomputing", "unit", c.unit, "stage", stage, "err", err)
		return false
	}
	c.obs.Count("ckpt.hit", 1)
	c.obs.Count("ckpt.resumed."+stage, 1)
	c.obs.Info("resumed from checkpoint", "unit", c.unit, "stage", stage)
	return true
}

// save writes the stage artifact. Persistence is best-effort: a full
// disk or revoked permission degrades the run to non-resumable but must
// not fail it, so errors are counted and logged, never returned.
func (c *ckptRef) save(stage string, v any) {
	if c == nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		c.obs.Count("ckpt.write_errors", 1)
		c.obs.Info("checkpoint encode failed", "unit", c.unit, "stage", stage, "err", err)
		return
	}
	if err := c.store.Put(c.key(stage), buf.Bytes()); err != nil {
		c.obs.Count("ckpt.write_errors", 1)
		c.obs.Info("checkpoint write failed", "unit", c.unit, "stage", stage, "err", err)
		return
	}
	c.obs.Count("ckpt.writes", 1)
	c.obs.Debug("checkpoint written", "unit", c.unit, "stage", stage, "bytes", buf.Len())
}
