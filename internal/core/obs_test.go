package core

import (
	"io"
	"log/slog"
	"reflect"
	"testing"

	"repro/internal/chips"
	"repro/internal/fault"
	"repro/internal/obs"
)

// fullObserver attaches every sink: spans, metrics and a debug-level
// logger writing to io.Discard, so every instrumentation path executes.
func fullObserver() *obs.Observer {
	return &obs.Observer{
		Trace:   obs.NewTrace(),
		Metrics: obs.NewMetrics(),
		Log:     slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
	}
}

// stripTelemetry returns a copy of the result without the telemetry
// snapshot, which is the one field allowed to differ between an
// observed and an unobserved run.
func stripTelemetry(res *Result) Result {
	c := *res
	c.Telemetry = nil
	return c
}

// The no-perturbation contract: a fully observed run — spans, metrics
// and debug logging all live — produces exactly the result of an
// unobserved run, for any worker count, including on the fault-injected
// self-healing path.
func TestRunByteIdenticalWithObservability(t *testing.T) {
	chip := chips.ByID("B4")
	opts := func() Options {
		o := fastOptions()
		p := fault.DefaultPlan()
		o.Faults = &p
		return o
	}

	o := opts()
	o.Workers = 2
	base, err := Run(chip, o)
	if err != nil {
		t.Fatal(err)
	}
	if base.Telemetry != nil {
		t.Error("unobserved run should carry no telemetry")
	}

	o = opts()
	o.Workers = 2
	o.Obs = fullObserver()
	observed, err := Run(chip, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTelemetry(observed), stripTelemetry(base)) {
		t.Errorf("observability perturbed the result")
	}

	o5 := opts()
	o5.Workers = 5
	o5.Obs = fullObserver()
	observed5, err := Run(chip, o5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTelemetry(observed5), stripTelemetry(base)) {
		t.Errorf("observability at 5 workers perturbed the result")
	}

	// Counter values are part of the determinism contract: they count
	// work items, not time, so the whole counter map must reproduce
	// across worker counts (durations, by design, do not).
	if observed.Telemetry == nil || observed5.Telemetry == nil {
		t.Fatal("observed runs should carry telemetry")
	}
	if !reflect.DeepEqual(observed.Telemetry.Counters, observed5.Telemetry.Counters) {
		t.Errorf("counters differ across worker counts:\n2: %v\n5: %v",
			observed.Telemetry.Counters, observed5.Telemetry.Counters)
	}

	// The faulted run must have exercised the interesting counters.
	c := observed.Telemetry.Counters
	if c["register.mi_evals"] <= 0 {
		t.Errorf("register.mi_evals = %d, want > 0", c["register.mi_evals"])
	}
	if c["denoise.slices"] <= 0 || c["denoise.iterations"] <= 0 {
		t.Errorf("denoise counters missing: %v", c)
	}
	if c["quality.repaired"] <= 0 {
		t.Errorf("quality.repaired = %d, want > 0 on a faulted run", c["quality.repaired"])
	}
	var injected, detected int64
	for name, v := range c {
		switch {
		case len(name) > 15 && name[:15] == "fault.injected.":
			injected += v
		case len(name) > 15 && name[:15] == "quality.detect.":
			detected += v
		}
	}
	if injected <= 0 || detected <= 0 {
		t.Errorf("per-kind fault counters missing: injected %d, detected %d (%v)",
			injected, detected, c)
	}
	if int64(len(observed.Injected.Injected)) != injected {
		t.Errorf("fault.injected.* sums to %d, report says %d",
			injected, len(observed.Injected.Injected))
	}
	if int64(len(observed.Repairs.Repairs)) != c["quality.repaired"] {
		t.Errorf("quality.repaired = %d, report says %d",
			c["quality.repaired"], len(observed.Repairs.Repairs))
	}

	// Every canonical stage plus the conditional inject span must be in
	// the trace.
	stats, _ := o.Obs.Trace.Summary()
	seen := map[string]bool{}
	for _, st := range stats {
		seen[st.Name] = true
	}
	for _, stage := range append(Stages(), StageInject) {
		if !seen[stage] {
			t.Errorf("stage %q missing from trace summary (have %v)", stage, stats)
		}
	}
}

// The cheaper half of the contract: Reconstruct alone, observed vs not,
// on the shared acquisition.
func TestReconstructUnperturbedByObservability(t *testing.T) {
	acq, window := testAcquisition(t)
	o := fastOptions()
	o.Workers = 3
	wantPlan, wantInfo, err := Reconstruct(acq, window, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Obs = fullObserver()
	gotPlan, gotInfo, err := Reconstruct(acq, window, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotInfo, wantInfo) {
		t.Errorf("observed recon info %+v != %+v", gotInfo, wantInfo)
	}
	if !reflect.DeepEqual(gotPlan, wantPlan) {
		t.Errorf("observed plan differs from unobserved plan")
	}
}

// Stages' canonical list and the stage constants must stay in sync: the
// tracecheck subcommand and the trace-smoke CI target validate traces
// against this exact set.
func TestStagesCanonicalList(t *testing.T) {
	want := []string{
		StageGenerate, StageAcquire, StageQualityGate, StageDenoise,
		StageAlign, StageAssemble, StageReslice, StageSegment,
		StageNetex, StageMeasure, StageScore,
	}
	if !reflect.DeepEqual(Stages(), want) {
		t.Errorf("Stages() = %v", Stages())
	}
	if len(Stages()) != 11 {
		t.Errorf("canonical stage count = %d", len(Stages()))
	}
}
