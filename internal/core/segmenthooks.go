package core

import (
	"repro/internal/img"
	"repro/internal/segment"
)

// Thin wrappers around package segment keeping the pipeline body
// readable.

func segmentOtsu(g *img.Gray) float64 { return segment.Otsu(g) }

// classMeans returns the mean intensity of the pixels above and below the
// threshold; ok is false when either class is (nearly) empty.
func classMeans(g *img.Gray, thr float64) (fg, bg float64, ok bool) {
	var sumF, sumB float64
	var nF, nB int
	for _, v := range g.Pix {
		if v > thr {
			sumF += v
			nF++
		} else {
			sumB += v
			nB++
		}
	}
	if nF < len(g.Pix)/1000 || nB < len(g.Pix)/1000 {
		return 0, 0, false
	}
	return sumF / float64(nF), sumB / float64(nB), true
}

// segmentMask thresholds the (already median-filtered) planar view. No
// morphological opening: it would erase the 2-pixel contacts and vias,
// and the median filter has already removed impulse noise.
func segmentMask(g *img.Gray, thr float64) []bool {
	return segment.Threshold(g, thr)
}

// segmentDecompose splits the mask into rectangles (tolerating the
// 2-pixel corner rounding that opening and blur introduce) and prunes
// those smaller than minPx pixels.
func segmentDecompose(mask []bool, w, minPx int) [][4]int {
	var out [][4]int
	for _, r := range segment.DecomposeTol(mask, w, 2) {
		if (r[2]-r[0])*(r[3]-r[1]) >= minPx {
			out = append(out, r)
		}
	}
	return out
}
