package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/chips"
	"repro/internal/img"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, DefaultOptions()); err == nil {
		t.Errorf("nil chip should error")
	}
	o := DefaultOptions()
	o.Units = 0
	if _, err := Run(chips.ByID("B4"), o); err == nil {
		t.Errorf("zero units should error")
	}
	o = DefaultOptions()
	o.Denoiser = "bogus"
	if _, err := Run(chips.ByID("B4"), o); err == nil {
		t.Errorf("unknown denoiser should error")
	}
}

// fastOptions lowers the acquisition cost for unit tests: coarser voxels,
// thicker slices, gentler artifacts.
func fastOptions() Options {
	o := DefaultOptions()
	o.VoxelNM = 8
	o.SEM.DriftSigmaPx = 0.4
	o.SEM.DwellUS = 12 // clean acquisition
	o.Denoise.Iterations = 25
	return o
}

func TestPipelineEndToEndClassic(t *testing.T) {
	chip := chips.ByID("B4") // coarsest features: most robust under noise
	res, err := Run(chip, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Score.TopologyCorrect {
		t.Errorf("topology not recovered: got %v", res.Extraction.Topology)
	}
	if !res.Score.BitlinesCorrect {
		t.Errorf("bitlines: got %d, want %d", res.Extraction.Bitlines, res.Truth.Bitlines)
	}
	if res.Score.MeanRelErr > 0.25 {
		t.Errorf("mean dimension error %.1f%% too high: %s",
			100*res.Score.MeanRelErr, res.Score.Summary())
	}
	if res.SliceCount == 0 || res.CostHours <= 0 {
		t.Errorf("acquisition metadata missing")
	}
	if res.ResidualDriftPx > 1.0 {
		t.Errorf("alignment residual %.2f px too high", res.ResidualDriftPx)
	}
}

func TestPipelineEndToEndOCSA(t *testing.T) {
	chip := chips.ByID("B5")
	// B5's isolation gates are 16 nm long; they need the fine voxel
	// grid to survive segmentation.
	o := fastOptions()
	o.VoxelNM = 4
	res, err := Run(chip, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Extraction.Topology != chips.OCSA {
		t.Errorf("OCSA not recovered on B5: %s", res.Score.Summary())
	}
	by := res.Extraction.ByElement()
	for _, e := range []chips.Element{chips.Isolation, chips.OffsetCancel, chips.Precharge} {
		if len(by[e]) == 0 {
			t.Errorf("element %s not recovered", e)
		}
	}
}

func TestPipelineNoNoiseIsNearPerfect(t *testing.T) {
	o := fastOptions()
	o.VoxelNM = 4
	o.SEM.DwellUS = 1000
	o.SEM.DriftSigmaPx = 0
	o.SEM.ChargeSigma = 0
	o.SEM.BlurSigmaPx = 0
	o.Denoiser = "none"
	o.Register.MaxShift = 0
	res, err := Run(chips.ByID("C4"), o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Score.TopologyCorrect || !res.Score.BitlinesCorrect {
		t.Errorf("clean pipeline failed: %s", res.Score.Summary())
	}
	if res.Score.MeanRelErr > 0.12 {
		t.Errorf("clean-path dimension error %.1f%% exceeds quantization budget",
			100*res.Score.MeanRelErr)
	}
	if len(res.Score.MissingElements) > 0 {
		t.Errorf("missing elements: %v", res.Score.MissingElements)
	}
}

func TestPipelineSplitBregmanPath(t *testing.T) {
	o := fastOptions()
	o.Denoiser = "split-bregman"
	res, err := Run(chips.ByID("B4"), o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Score.TopologyCorrect {
		t.Errorf("split-bregman path failed: %s", res.Score.Summary())
	}
}

func TestMeasurementCountScales(t *testing.T) {
	res, err := Run(chips.ByID("B4"), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range res.Stats {
		n += s.W.N + s.L.N
	}
	if n < 2*res.Truth.TransistorCount*8/10 {
		t.Errorf("measurements = %d, want close to %d", n, 2*res.Truth.TransistorCount)
	}
}

// flatField must stay well-defined on slices far below the nominal
// 1024-pixel sample: the strided sample always holds at least
// min(len(Pix), 64) values, and every pixel shifts by exactly the 10th
// intensity percentile.
func TestFlatFieldTinyImages(t *testing.T) {
	for _, dim := range [][2]int{{1, 1}, {2, 2}, {5, 3}, {8, 8}, {40, 2}} {
		g := img.New(dim[0], dim[1])
		for i := range g.Pix {
			g.Pix[i] = 0.25 + 0.01*float64(i%13)
		}
		sorted := append([]float64(nil), g.Pix...)
		sort.Float64s(sorted)
		p10 := sorted[len(sorted)/10]
		orig := append([]float64(nil), g.Pix...)
		flatField(g)
		for i := range g.Pix {
			if math.Abs(g.Pix[i]-(orig[i]-p10)) > 1e-15 {
				t.Fatalf("%dx%d: pixel %d = %v, want %v (p10 %v)",
					dim[0], dim[1], i, g.Pix[i], orig[i]-p10, p10)
			}
		}
	}
	// A zero-pixel image must be a no-op, not an index panic.
	flatField(&img.Gray{})
}

func TestPipelineWithProcessVariation(t *testing.T) {
	// The full noisy pipeline tolerates per-instance dimension jitter:
	// topology still recovered, measured means near nominal.
	o := fastOptions()
	o.JitterPct = 4
	o.JitterSeed = 5
	res, err := Run(chips.ByID("B4"), o)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Score.TopologyCorrect {
		t.Errorf("variation broke topology recovery: %s", res.Score.Summary())
	}
	if res.Score.MeanRelErr > 0.3 {
		t.Errorf("variation run error %.1f%%", 100*res.Score.MeanRelErr)
	}
}
