package core

// Ablation benchmarks for the pipeline's design choices, mirroring the
// paper's acquisition-parameter discussion (Section IV: dwell time trades
// noise against imaging cost; denoising and alignment are prerequisites
// for usable planar views). Each sub-benchmark reports the extraction
// fidelity so a -bench run doubles as the ablation table.

import (
	"testing"

	"repro/internal/chips"
)

func runOnce(b *testing.B, o Options) (errPct, costH, topoOK float64) {
	b.Helper()
	res, err := Run(chips.ByID("B4"), o)
	if err != nil {
		// A failed extraction is a data point, not a broken bench.
		return 100, 0, 0
	}
	ok := 0.0
	if res.Score.TopologyCorrect && len(res.Score.MissingElements) == 0 {
		ok = 1
	}
	return 100 * res.Score.MeanRelErr, res.CostHours, ok
}

func ablationOptions() Options {
	o := DefaultOptions()
	o.VoxelNM = 8
	o.Denoise.Iterations = 25
	return o
}

// BenchmarkAblationDwell sweeps the SEM dwell time: longer dwell lowers
// noise (and dimension error) but raises acquisition cost linearly.
func BenchmarkAblationDwell(b *testing.B) {
	for _, dwell := range []float64{1.5, 3, 6, 12} {
		b.Run(benchName("dwell_us", dwell), func(b *testing.B) {
			o := ablationOptions()
			o.SEM.DwellUS = dwell
			var errPct, cost, ok float64
			for i := 0; i < b.N; i++ {
				errPct, cost, ok = runOnce(b, o)
			}
			b.ReportMetric(errPct, "dim_err_pct")
			b.ReportMetric(cost, "sim_cost_h")
			b.ReportMetric(ok, "extraction_ok")
		})
	}
}

// BenchmarkAblationDenoiser compares the two TV algorithms the paper
// names against no denoising, at the default (noisy) dwell time.
func BenchmarkAblationDenoiser(b *testing.B) {
	for _, den := range []string{"none", "chambolle", "split-bregman"} {
		b.Run(den, func(b *testing.B) {
			o := ablationOptions()
			o.SEM.DwellUS = 3
			o.Denoiser = den
			var errPct, ok float64
			for i := 0; i < b.N; i++ {
				errPct, _, ok = runOnce(b, o)
			}
			b.ReportMetric(errPct, "dim_err_pct")
			b.ReportMetric(ok, "extraction_ok")
		})
	}
}

// BenchmarkAblationAlignment disables the mutual-information alignment
// under stage drift: the planar views scramble and extraction degrades.
func BenchmarkAblationAlignment(b *testing.B) {
	for _, aligned := range []bool{true, false} {
		name := "aligned"
		if !aligned {
			name = "unaligned"
		}
		b.Run(name, func(b *testing.B) {
			o := ablationOptions()
			o.SEM.DwellUS = 12
			o.SEM.DriftSigmaPx = 0.8
			if !aligned {
				o.Register.MaxShift = 0
			}
			var errPct, ok float64
			for i := 0; i < b.N; i++ {
				errPct, _, ok = runOnce(b, o)
			}
			b.ReportMetric(errPct, "dim_err_pct")
			b.ReportMetric(ok, "extraction_ok")
		})
	}
}

func benchName(prefix string, v float64) string {
	if v == float64(int(v)) {
		return prefix + "_" + itoa(int(v))
	}
	return prefix + "_" + itoa(int(v*10)) + "e-1"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
