package core

import (
	"reflect"
	"testing"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/sem"
)

// chipAcquisition builds a production-resolution acquisition for one chip
// (the geometry and artifact levels the gate thresholds are tuned
// against), without running the rest of the pipeline.
func chipAcquisition(t *testing.T, id string, o Options) (*sem.Acquisition, geom.Rect) {
	t.Helper()
	chip := chips.ByID(id)
	cfg := chipgen.DefaultConfig(chip)
	cfg.Units = o.Units
	region, err := chipgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := region.Cell.Bounds()
	vol, err := chipgen.Voxelize(region.Cell, window, o.VoxelNM)
	if err != nil {
		t.Fatal(err)
	}
	o.SEM.Detector = chip.Detector
	acq, err := sem.AcquireStack(vol, o.SEM)
	if err != nil {
		t.Fatal(err)
	}
	return acq, window
}

// The gate must stay completely silent on clean acquisitions: an empty
// report and every slice passed through by pointer, so the clean-path
// output stays byte-identical with the gate enabled.
func TestQualityGateCleanStacksUntouched(t *testing.T) {
	for _, chip := range chips.All() {
		o := DefaultOptions()
		acq, _ := chipAcquisition(t, chip.ID, o)
		rep, out, err := qualityGate(acq, o)
		if err != nil {
			t.Fatalf("%s: %v", chip.ID, err)
		}
		if len(rep.Repairs) != 0 {
			t.Errorf("%s: clean stack got %d repairs: %+v", chip.ID, len(rep.Repairs), rep.Repairs)
		}
		if rep.Checked != len(acq.Slices) {
			t.Errorf("%s: checked %d of %d slices", chip.ID, rep.Checked, len(acq.Slices))
		}
		for i := range out {
			if out[i] != acq.Slices[i] {
				t.Errorf("%s: clean slice %d was copied instead of passed through", chip.ID, i)
			}
		}
	}
}

// With the default fault plan (>=10% of slices corrupted) the gate must
// identify at least 90% of the injected slices and essentially nothing
// else, on both a classic and an OCSA chip.
func TestQualityGateRecallAndPrecision(t *testing.T) {
	for _, id := range []string{"A4", "B4"} {
		o := DefaultOptions()
		o.SEM.DwellUS = 12
		acq, _ := chipAcquisition(t, id, o)
		plan := fault.DefaultPlan()
		truth, err := fault.Inject(acq, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(truth.Injected); got < len(acq.Slices)/10 {
			t.Fatalf("%s: default plan corrupted only %d of %d slices", id, got, len(acq.Slices))
		}
		rep, out, err := qualityGate(acq, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		flagged := make(map[int]bool, len(rep.Repairs))
		for _, r := range rep.Repairs {
			flagged[r.Index] = true
			if r.Action == "" {
				t.Errorf("%s: repair %d has no action", id, r.Index)
			}
		}
		byIdx := truth.ByIndex()
		hit := 0
		for idx := range byIdx {
			if flagged[idx] {
				hit++
			}
		}
		if recall := float64(hit) / float64(len(byIdx)); recall < 0.9 {
			t.Errorf("%s: recall %.0f%% below 90%% (%d/%d)", id, 100*recall, hit, len(byIdx))
		}
		fp := 0
		for idx := range flagged {
			if _, injected := byIdx[idx]; !injected {
				fp++
			}
		}
		if fp > 1 {
			t.Errorf("%s: %d healthy slices falsely flagged", id, fp)
		}
		// Every slice the gate touched must differ from the raw input;
		// every untouched slice must be the same pointer.
		for i := range out {
			if flagged[i] == (out[i] == acq.Slices[i]) && out[i] != nil {
				t.Errorf("%s: slice %d repair/passthrough mismatch (flagged=%v)", id, i, flagged[i])
			}
		}
	}
}

// The gate's report and output must be identical for every worker count.
func TestQualityGateDeterministicAcrossWorkers(t *testing.T) {
	o := DefaultOptions()
	o.SEM.DwellUS = 12
	acq, _ := chipAcquisition(t, "A4", o)
	if _, err := fault.Inject(acq, fault.DefaultPlan()); err != nil {
		t.Fatal(err)
	}
	o.Workers = 1
	repSerial, outSerial, err := qualityGate(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	repPar, outPar, err := qualityGate(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repSerial, repPar) {
		t.Fatalf("reports diverge across worker counts:\nserial: %+v\nparallel: %+v", repSerial, repPar)
	}
	for i := range outSerial {
		if !reflect.DeepEqual(outSerial[i].Pix, outPar[i].Pix) {
			t.Errorf("slice %d pixels diverge across worker counts", i)
		}
	}
}

// Tiny stacks cannot support neighbor-based screening; the gate must pass
// them through untouched rather than misfire.
func TestQualityGateTinyStackPassthrough(t *testing.T) {
	o := DefaultOptions()
	acq, _ := chipAcquisition(t, "C4", o)
	acq.Slices = acq.Slices[:2]
	rep, out, err := qualityGate(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repairs) != 0 || len(out) != 2 {
		t.Errorf("tiny stack was modified: %+v", rep)
	}
}

// End to end: a heavily faulted acquisition must still complete the full
// pipeline without error, recover the topology, surface the injection
// ground truth, and land within a bounded fidelity delta of the clean
// run.
func TestRunWithFaultsSelfHeals(t *testing.T) {
	o := DefaultOptions()
	o.SEM.DwellUS = 12
	chip := chips.ByID("A4")
	clean, err := Run(chip, o)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Injected != nil || len(clean.Repairs.Repairs) != 0 {
		t.Fatalf("clean run reports phantom faults: %+v", clean.Repairs)
	}
	plan := fault.DefaultPlan()
	o.Faults = &plan
	faulted, err := Run(chip, o)
	if err != nil {
		t.Fatalf("faulted run must self-heal, got: %v", err)
	}
	if faulted.Injected == nil || len(faulted.Injected.Injected) == 0 {
		t.Fatal("faulted run did not surface the injection report")
	}
	if !faulted.Score.TopologyCorrect {
		t.Errorf("faulted run lost the topology: %s", faulted.Score.Summary())
	}
	flagged := make(map[int]bool)
	for _, r := range faulted.Repairs.Repairs {
		flagged[r.Index] = true
	}
	hit := 0
	for idx := range faulted.Injected.ByIndex() {
		if flagged[idx] {
			hit++
		}
	}
	if recall := float64(hit) / float64(len(faulted.Injected.Injected)); recall < 0.9 {
		t.Errorf("pipeline recall %.0f%% below 90%%", 100*recall)
	}
	if delta := faulted.Score.MeanRelErr - clean.Score.MeanRelErr; delta > 0.10 {
		t.Errorf("fidelity degraded by %.1f%% relative dimension error (clean %.1f%%, faulted %.1f%%)",
			100*delta, 100*clean.Score.MeanRelErr, 100*faulted.Score.MeanRelErr)
	}
}
