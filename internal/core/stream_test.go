package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/sem"
)

// TestStreamMatchesBarrier is the tentpole identity contract: the
// streaming reconstruction reproduces the barrier reconstruction byte
// for byte — plan, rectangle order, gate report, alignment residual —
// for every worker count, window size and pooling mode, on clean and
// fault-injected stacks alike.
func TestStreamMatchesBarrier(t *testing.T) {
	acq, window := testAcquisition(t)
	faulted := faultedAcquisition(t, acq)
	for _, tc := range []struct {
		name string
		acq  *sem.Acquisition
	}{
		{"clean", acq},
		{"faulted", faulted},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := fastOptions()
			o.Barrier = true
			o.Workers = 1
			wantPlan, wantInfo, err := Reconstruct(tc.acq, window, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 4} {
				for _, cfg := range []struct {
					name   string
					window int
					pool   *img.Pool
				}{
					{"default", 0, nil},
					{"pooled", 0, img.NewPool()},
					{"window1", 1, img.NewPool()},
				} {
					so := fastOptions()
					so.Workers = workers
					so.StreamWindow = cfg.window
					so.Pool = cfg.pool
					gotPlan, gotInfo, err := Reconstruct(tc.acq, window, so)
					if err != nil {
						t.Fatalf("workers=%d %s: %v", workers, cfg.name, err)
					}
					if !reflect.DeepEqual(gotInfo, wantInfo) {
						t.Errorf("workers=%d %s: info %+v != barrier %+v", workers, cfg.name, gotInfo, wantInfo)
					}
					if !reflect.DeepEqual(gotPlan, wantPlan) {
						t.Errorf("workers=%d %s: plan differs from barrier", workers, cfg.name)
					}
					if cfg.pool != nil {
						if live := cfg.pool.Stats().Live; live != 0 {
							t.Errorf("workers=%d %s: %d pool buffers leaked", workers, cfg.name, live)
						}
					}
				}
			}
		})
	}
}

// faultedAcquisition clones the shared acquisition and corrupts it with
// the default fault plan, so the identity tests also cover the repair
// and bridged-detector paths.
func faultedAcquisition(t *testing.T, acq *sem.Acquisition) *sem.Acquisition {
	t.Helper()
	c := &sem.Acquisition{Options: acq.Options, SliceZ: acq.SliceZ, TrueDrift: acq.TrueDrift}
	c.Slices = make([]*img.Gray, len(acq.Slices))
	for i, g := range acq.Slices {
		c.Slices[i] = g.Clone()
	}
	plan := fault.DefaultPlan()
	if _, err := fault.Inject(c, plan); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunStreamMatchesBarrierRun pins the full producer-mode run — lazy
// plane rasterization feeding the streaming pipeline — against the
// materialize-everything barrier run: identical results and identical
// deterministic counters, at several worker counts.
func TestRunStreamMatchesBarrierRun(t *testing.T) {
	chip := chips.ByID("B4")
	o := fastOptions()
	o.Barrier = true
	o.Workers = 2
	o.Obs = fullObserver()
	base, err := Run(chip, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 4} {
		so := fastOptions()
		so.Workers = workers
		so.Pool = img.NewPool()
		so.Obs = fullObserver()
		got, err := Run(chip, so)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(stripTelemetry(got), stripTelemetry(base)) {
			t.Errorf("workers=%d: streaming run differs from barrier run", workers)
		}
		if !reflect.DeepEqual(got.Telemetry.Counters, base.Telemetry.Counters) {
			t.Errorf("workers=%d: counters diverge:\nstream:  %v\nbarrier: %v",
				workers, got.Telemetry.Counters, base.Telemetry.Counters)
		}
		if live := so.Pool.Stats().Live; live != 0 {
			t.Errorf("workers=%d: %d pool buffers leaked", workers, live)
		}
	}
}

// syntheticStack builds a deterministic n-slice acquisition with smooth
// structure plus hash noise (so the quality gate's shot-noise and
// constant-row detectors stay quiet) at the pipeline's native slice
// height. It stands in for a deep milling campaign without the
// acquisition cost.
func syntheticStack(n, w int) *sem.Acquisition {
	h := chipgen.StackDepth
	semOpts := sem.DefaultOptions()
	semOpts.DwellUS = 12
	acq := &sem.Acquisition{Options: semOpts}
	for z := 0; z < n; z++ {
		g := img.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := 0.5 + 0.25*math.Sin(float64(x)*0.35+float64(z)*0.011) +
					0.15*math.Cos(float64(y)*0.23-float64(z)*0.007)
				hash := float64((x*73856093^y*19349663^z*83492791)%1024)/1024.0 - 0.5
				g.Set(x, y, v+0.08*hash)
			}
		}
		g.Clamp(0, sem.ClampMax)
		acq.Slices = append(acq.Slices, g)
	}
	return acq
}

// deepOptions keeps the 384-slice runs affordable: shallow search
// window, few denoise iterations.
func deepOptions() Options {
	o := fastOptions()
	o.Denoise.Iterations = 6
	o.Register.MaxShift = 2
	return o
}

// TestStreamDeepStackBoundedMemory is the perf contract on a 384-slice
// stack: the streaming path must (a) reproduce the barrier output byte
// for byte at several worker counts, (b) hold only a window-bounded
// number of image buffers live at once — independent of stack depth —
// and (c) allocate less than half of what the barrier path allocates.
func TestStreamDeepStackBoundedMemory(t *testing.T) {
	const depth = 384
	acq := syntheticStack(depth, 48)
	window := geom.R(0, 0, int64(48*8), int64(depth*8))

	o := deepOptions()
	o.Barrier = true
	o.Workers = 1
	barrierAllocs := measureAllocs(t, func() {
		wantPlan, wantInfo, err := Reconstruct(acq, window, o)
		if err != nil {
			t.Fatal(err)
		}
		deepWant.plan, deepWant.info = wantPlan, wantInfo
	})

	for _, workers := range []int{1, 4} {
		so := deepOptions()
		so.Workers = workers
		so.Pool = img.NewPool()
		var gotPlan interface{}
		var gotInfo ReconInfo
		streamAllocs := measureAllocs(t, func() {
			p, info, err := Reconstruct(acq, window, so)
			if err != nil {
				t.Fatal(err)
			}
			gotPlan, gotInfo = p, info
		})
		if !reflect.DeepEqual(gotInfo, deepWant.info) {
			t.Errorf("workers=%d: info %+v != barrier %+v", workers, gotInfo, deepWant.info)
		}
		if !reflect.DeepEqual(gotPlan, deepWant.plan) {
			t.Errorf("workers=%d: deep-stack plan differs from barrier", workers)
		}
		st := so.Pool.Stats()
		if st.Live != 0 {
			t.Errorf("workers=%d: %d pool buffers leaked", workers, st.Live)
		}
		// The live-buffer high-water mark is the pipeline's working
		// set: denoised slices in flight (bounded by the ring window
		// plus one per worker) and the fold's two references — never
		// anything proportional to the 384-slice depth.
		bound := int64(2*(2*workers+2) + workers + 4)
		if st.PeakLive > bound {
			t.Errorf("workers=%d: pool peak %d live buffers exceeds window bound %d", workers, st.PeakLive, bound)
		}
		if st.Hits == 0 {
			t.Errorf("workers=%d: pool never reused a buffer over %d slices", workers, depth)
		}
		// Allocation-volume gate, measured not asserted from theory:
		// the barrier materializes the denoised stack, the aligned
		// stack, the volume copy and per-slice denoiser scratch; the
		// streaming path replaces all four with the pooled window.
		if streamAllocs > barrierAllocs/2 {
			t.Errorf("workers=%d: streaming allocated %d MB, barrier %d MB — want less than half",
				workers, streamAllocs>>20, barrierAllocs>>20)
		}
	}
}

var deepWant struct {
	plan interface{}
	info ReconInfo
}

// measureAllocs returns the heap bytes allocated while fn ran.
func measureAllocs(t *testing.T, fn func()) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamCancellationReleasesPool cancels a deep streaming run
// mid-flight and verifies the teardown: a context error surfaces and
// every pooled buffer is back (no use-after-release panics, no leaks).
func TestStreamCancellationReleasesPool(t *testing.T) {
	acq := syntheticStack(384, 48)
	window := geom.R(0, 0, 48*8, 384*8)
	o := deepOptions()
	o.Workers = 4
	o.Pool = img.NewPool()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, _, err := ReconstructCtx(ctx, acq, window, o)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if live := o.Pool.Stats().Live; live != 0 {
		t.Errorf("%d pool buffers leaked after cancellation", live)
	}
}

// TestStreamErrorReleasesPool aborts the pipeline from inside (a
// mid-stack slice with mismatched dimensions) and verifies the same
// teardown invariant on the failure path, with alignment both on and
// off.
func TestStreamErrorReleasesPool(t *testing.T) {
	for _, align := range []bool{true, false} {
		acq := syntheticStack(64, 48)
		acq.Slices[40] = img.New(47, chipgen.StackDepth)
		window := geom.R(0, 0, 48*8, 64*8)
		o := deepOptions()
		// With the gate on, the zeroed slice would be flagged and
		// repaired to full width; disable it so the dimension mismatch
		// reaches alignment / assembly.
		o.Quality.Disabled = true
		if !align {
			o.Register.MaxShift = 0
		}
		o.Workers = 3
		o.Pool = img.NewPool()
		_, _, err := Reconstruct(acq, window, o)
		if err == nil {
			t.Fatalf("align=%v: mismatched slice should error", align)
		}
		if live := o.Pool.Stats().Live; live != 0 {
			t.Errorf("align=%v: %d pool buffers leaked after error", align, live)
		}
	}
}

// TestStreamCheckpointedMatchesBarrier covers the checkpointed variant:
// with a store attached the run takes the streamPreprocess path
// (materializing the aligned artifact), which must also reproduce the
// barrier result exactly.
func TestStreamCheckpointedMatchesBarrier(t *testing.T) {
	acq, window := testAcquisition(t)
	o := fastOptions()
	o.Barrier = true
	o.Workers = 1
	wantPlan, wantInfo, err := Reconstruct(acq, window, o)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ckpt.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	so := fastOptions()
	so.Workers = 3
	so.Ckpt = store
	so.CkptUnit = "stream-ckpt-test"
	gotPlan, gotInfo, err := Reconstruct(acq, window, so)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotInfo, wantInfo) {
		t.Errorf("ckpt streaming info %+v != barrier %+v", gotInfo, wantInfo)
	}
	if !reflect.DeepEqual(gotPlan, wantPlan) {
		t.Errorf("ckpt streaming plan differs from barrier")
	}
}
