package core

import (
	"testing"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/sem"
)

func TestPlanarViews(t *testing.T) {
	chip := chips.ByID("B4")
	o := fastOptions()
	region, err := chipgen.Generate(chipgen.DefaultConfig(chip))
	if err != nil {
		t.Fatal(err)
	}
	window := region.Cell.Bounds()
	vol, err := chipgen.Voxelize(region.Cell, window, o.VoxelNM)
	if err != nil {
		t.Fatal(err)
	}
	o.SEM.Detector = chip.Detector
	acq, err := sem.AcquireStack(vol, o.SEM)
	if err != nil {
		t.Fatal(err)
	}
	views, err := PlanarViews(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	// Every layer with a depth band yields one view.
	for _, name := range []string{"M1", "M2", "gate", "active", "contact", "via1", "capacitor"} {
		v, ok := views[name]
		if !ok {
			t.Errorf("missing planar view for %s", name)
			continue
		}
		if v.W != acq.Slices[0].W || v.H != len(acq.Slices) {
			t.Errorf("%s: view dims %dx%d, want %dx%d", name, v.W, v.H,
				acq.Slices[0].W, len(acq.Slices))
		}
	}
	// The M1 view shows structure (bitlines); the capacitor band in an
	// SA-only region is near flat.
	m1 := views["M1"].Statistics()
	cap := views["capacitor"].Statistics()
	if m1.Std <= 2*cap.Std {
		t.Errorf("M1 view should carry far more structure than the empty capacitor band: %.3f vs %.3f",
			m1.Std, cap.Std)
	}
}
