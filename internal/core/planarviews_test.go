package core

import (
	"testing"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/img"
	"repro/internal/sem"
)

func TestPlanarViews(t *testing.T) {
	chip := chips.ByID("B4")
	o := fastOptions()
	region, err := chipgen.Generate(chipgen.DefaultConfig(chip))
	if err != nil {
		t.Fatal(err)
	}
	window := region.Cell.Bounds()
	vol, err := chipgen.Voxelize(region.Cell, window, o.VoxelNM)
	if err != nil {
		t.Fatal(err)
	}
	o.SEM.Detector = chip.Detector
	acq, err := sem.AcquireStack(vol, o.SEM)
	if err != nil {
		t.Fatal(err)
	}
	views, err := PlanarViews(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	// Every layer with a depth band yields one view.
	for _, name := range []string{"M1", "M2", "gate", "active", "contact", "via1", "capacitor"} {
		v, ok := views[name]
		if !ok {
			t.Errorf("missing planar view for %s", name)
			continue
		}
		if v.W != acq.Slices[0].W || v.H != len(acq.Slices) {
			t.Errorf("%s: view dims %dx%d, want %dx%d", name, v.W, v.H,
				acq.Slices[0].W, len(acq.Slices))
		}
	}
	// The M1 view shows structure (bitlines); the capacitor band in an
	// SA-only region is near flat.
	m1 := views["M1"].Statistics()
	cap := views["capacitor"].Statistics()
	if m1.Std <= 2*cap.Std {
		t.Errorf("M1 view should carry far more structure than the empty capacitor band: %.3f vs %.3f",
			m1.Std, cap.Std)
	}
}

// PlanarViews must honour Options.Denoiser like Reconstruct does —
// including the "none" and "split-bregman" paths and rejecting unknown
// names — instead of silently running Chambolle.
func TestPlanarViewsDenoiserPaths(t *testing.T) {
	acq, _ := testAcquisition(t)
	for _, den := range []string{"none", "split-bregman"} {
		t.Run(den, func(t *testing.T) {
			o := fastOptions()
			o.Denoiser = den
			views, err := PlanarViews(acq, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"M1", "M2", "gate", "active", "contact", "via1", "capacitor"} {
				v, ok := views[name]
				if !ok {
					t.Fatalf("missing planar view for %s", name)
				}
				if v.W != acq.Slices[0].W || v.H != len(acq.Slices) {
					t.Errorf("%s: view dims %dx%d, want %dx%d", name, v.W, v.H,
						acq.Slices[0].W, len(acq.Slices))
				}
			}
		})
	}
	o := fastOptions()
	o.Denoiser = "bogus"
	if _, err := PlanarViews(acq, o); err == nil {
		t.Errorf("unknown denoiser must error, not fall back to chambolle")
	}
}

// tinyStack builds a hand-made acquisition of w-pixel-wide slices tall
// enough to cover every depth band.
func tinyStack(w, n int) *sem.Acquisition {
	acq := &sem.Acquisition{}
	for z := 0; z < n; z++ {
		g := img.New(w, chipgen.StackDepth)
		for i := range g.Pix {
			g.Pix[i] = float64((i+z)%7) * 0.1
		}
		acq.Slices = append(acq.Slices, g)
	}
	return acq
}

// PlanarViews must apply the same alignment guard as Reconstruct:
// MaxShift=0 and single-slice stacks skip the MI alignment entirely.
// 4-pixel-wide slices are too small for even a zero-width search window,
// so an unguarded AlignStack call would fail here.
func TestPlanarViewsAlignmentGuard(t *testing.T) {
	o := fastOptions()
	o.Denoiser = "none"
	o.Register.MaxShift = 0
	views, err := PlanarViews(tinyStack(4, 3), o)
	if err != nil {
		t.Fatalf("MaxShift=0 must skip alignment: %v", err)
	}
	if v := views["M1"]; v.W != 4 || v.H != 3 {
		t.Errorf("M1 dims %dx%d, want 4x3", v.W, v.H)
	}

	o = fastOptions()
	o.Denoiser = "none" // MaxShift stays at the default 4
	views, err = PlanarViews(tinyStack(4, 1), o)
	if err != nil {
		t.Fatalf("single-slice stack must skip alignment: %v", err)
	}
	if v := views["gate"]; v.W != 4 || v.H != 1 {
		t.Errorf("gate dims %dx%d, want 4x1", v.W, v.H)
	}
}
