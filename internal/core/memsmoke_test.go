package core

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/layout"
	"repro/internal/netex"
)

// TestMemorySmoke is the process under scripts/memory_smoke.sh (`make
// memory-smoke`), not a normal unit test: it runs only when the
// HIFIDRAM_MEMORY_SMOKE environment variable selects a mode, so plain
// `go test ./internal/core` skips it. The script runs the compiled test
// binary twice on the same deterministic 384-slice stack —
//
//	mode "barrier": the materialize-everything reference path, in a
//	process with no memory limit;
//	mode "stream":  the pooled streaming path, in a process under a
//	hard GOMEMLIMIT a barrier-sized heap would thrash against;
//
// — each writing a canonical result fingerprint to the file named by
// HIFIDRAM_MEMORY_SMOKE_OUT. The script asserts both processes exit 0
// and the fingerprints match: the streaming pipeline completes inside
// the limit and stays byte-identical to the reference.
func TestMemorySmoke(t *testing.T) {
	mode := os.Getenv("HIFIDRAM_MEMORY_SMOKE")
	if mode == "" {
		t.Skip("set HIFIDRAM_MEMORY_SMOKE=barrier|stream (driven by scripts/memory_smoke.sh)")
	}
	out := os.Getenv("HIFIDRAM_MEMORY_SMOKE_OUT")
	if out == "" {
		t.Fatal("HIFIDRAM_MEMORY_SMOKE_OUT not set")
	}
	const depth, width = 384, 48
	acq := syntheticStack(depth, width)
	window := geom.R(0, 0, width*8, depth*8)
	o := deepOptions()
	switch mode {
	case "barrier":
		o.Barrier = true
		o.Workers = 1
	case "stream":
		o.Workers = 4
		o.Pool = img.NewPool()
	default:
		t.Fatalf("HIFIDRAM_MEMORY_SMOKE = %q, want barrier or stream", mode)
	}
	plan, info, err := Reconstruct(acq, window, o)
	if err != nil {
		t.Fatalf("%s reconstruction: %v", mode, err)
	}
	if o.Pool != nil {
		if live := o.Pool.Stats().Live; live != 0 {
			t.Fatalf("%d pool buffers leaked", live)
		}
	}
	fp := smokeFingerprint(plan, info)
	if err := os.WriteFile(out, []byte(fp+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: %s", mode, fp)
}

// smokeFingerprint hashes a reconstruction result canonically: layers
// in sorted order (Plan.ByLayer is a map, so gob order would not
// reproduce across processes), rectangles in their deterministic plan
// order, and the full ReconInfo including every repair record.
func smokeFingerprint(plan *netex.Plan, info ReconInfo) string {
	h := sha256.New()
	fmt.Fprintf(h, "info %+v\nbounds %v\n", info, plan.Bounds)
	layers := make([]int, 0, len(plan.ByLayer))
	for l := range plan.ByLayer {
		layers = append(layers, int(l))
	}
	sort.Ints(layers)
	for _, l := range layers {
		fmt.Fprintf(h, "layer %d\n", l)
		for _, r := range plan.ByLayer[layout.Layer(l)] {
			fmt.Fprintf(h, "%d %d %d %d\n", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
