package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/img"
	"repro/internal/par"
	"repro/internal/register"
	"repro/internal/sem"
)

// QualityOptions configures the slice-quality gate that screens every
// acquisition before denoising: per-slice outlier detection, fault
// classification and repair by interpolation from healthy neighbors. The
// zero value enables the gate with the default thresholds.
//
// Real stacks vary enormously along the milling axis — slices near the
// stack edges are close to featureless oxide — so none of the detectors
// may compare a slice against a whole-stack norm. Each is grounded
// either in acquisition physics (shot-noise floor, detector ceiling,
// exact-constant rows) or in its immediate neighbors (adjacent slices
// are 4 nm apart and nearly identical), which keeps the gate silent on
// clean acquisitions: an empty RepairReport and not one pixel touched.
type QualityOptions struct {
	// Disabled skips the gate entirely.
	Disabled bool
	// SatLevel is the intensity at or above which a pixel counts as
	// saturated; zero means just below the detector ceiling.
	SatLevel float64
	// SatFrac flags a slice whose saturated fraction exceeds it
	// (charging flare). A clean slice has no saturated pixels at all —
	// nominal intensities sit ~10 noise sigmas below the ceiling — so
	// the threshold only needs to clear numerical dust. Zero means
	// 0.001.
	SatFrac float64
	// DropNoiseFactor flags a slice whose intensity standard deviation
	// falls below this fraction of the shot-noise floor for the
	// acquisition's dwell time (dropped slice: a frame with less
	// variation than the beam noise cannot have been acquired). Zero
	// means 0.7.
	DropNoiseFactor float64
	// BurstDY / BurstDX flag a slice whose cumulative row-profile
	// (vertical) or column-profile (lateral) offset spikes by at least
	// this many pixels against its local median (drift burst). Zeros
	// mean 2.5 and 4.
	BurstDY float64
	BurstDX float64
	// BurstProbePx bounds the per-pair profile-shift search. Zero
	// means 16.
	BurstProbePx int
	// BurstMinCorr is the correlation a nonzero profile shift must
	// reach to count as stage motion. A true stage jump is a pure
	// translation (profile correlation near 1); a structural
	// transition along the stack can also prefer a nonzero shift, but
	// only with a mediocre correlation. Zero means 0.97.
	BurstMinCorr float64
	// BurstVetoCorr is the (lower) correlation at which an adjacent
	// pair's estimate is trusted enough to *contradict* the other
	// pair's confident vote — blocking the burst blame from landing on
	// the healthy neighbor of an excursed slice. Zero means 0.9.
	BurstVetoCorr float64
	// CurtainResid / CurtainMinCol / CurtainColFrac flag a slice as
	// curtained when more than CurtainColFrac of its columns fall
	// below CurtainResid times the neighboring slices' column profile.
	// Profiles are normalized by each slice's mean intensity first, so
	// the per-slice charging offset cancels instead of masquerading as
	// column damage in dim regions. Normalized columns whose neighbor
	// value is below CurtainMinCol carry no signal and are skipped.
	// Zeros mean 0.35, 0.25 and 0.15.
	CurtainResid   float64
	CurtainMinCol  float64
	CurtainColFrac float64
	// MIFloor is the catch-all: a slice whose mutual information with
	// every healthy neighbor falls below MIFloor times the *local*
	// median pair MI (a window of MIWindow pairs each way) is an
	// anomaly even if no specific model matches. The natural MI along
	// a stack is bimodal — plateaus inside repeating structure,
	// valleys at transitions, roughly 4x apart — so the floor must sit
	// well below the valley/plateau ratio. Zero means 0.2.
	MIFloor float64
	// MIWindow is the half-width, in pairs, of the local MI window.
	// Zero means 8.
	MIWindow int
	// MIBins is the MI histogram resolution. Zero means 32.
	MIBins int
}

func (q QualityOptions) withDefaults() QualityOptions {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&q.SatLevel, sem.ClampMax-0.05)
	def(&q.SatFrac, 0.001)
	def(&q.DropNoiseFactor, 0.7)
	def(&q.BurstDY, 2.5)
	def(&q.BurstDX, 4)
	def(&q.BurstMinCorr, 0.97)
	def(&q.BurstVetoCorr, 0.9)
	def(&q.CurtainResid, 0.35)
	def(&q.CurtainMinCol, 0.25)
	def(&q.CurtainColFrac, 0.15)
	def(&q.MIFloor, 0.2)
	if q.BurstProbePx == 0 {
		q.BurstProbePx = 16
	}
	if q.MIWindow == 0 {
		q.MIWindow = 8
	}
	if q.MIBins == 0 {
		q.MIBins = 32
	}
	return q
}

// SliceRepair records one flagged slice: what the gate believes went
// wrong and what it did about it.
type SliceRepair struct {
	// Index is the slice position in the stack.
	Index int
	// Kind is the classified fault model (fault.KindUnknown when only
	// the MI catch-all fired).
	Kind fault.Kind
	// Metric is the value of the detector that fired.
	Metric float64
	// Action describes the repair: "interp(j,k)", "copy(j)" or "none"
	// when no healthy neighbor existed.
	Action string
}

// RepairReport is the slice-quality gate's outcome for one acquisition.
type RepairReport struct {
	// Checked is the number of slices screened.
	Checked int
	// Repairs lists the flagged slices in ascending index order.
	Repairs []SliceRepair
}

// Indices returns the flagged slice indices in ascending order.
func (r RepairReport) Indices() []int {
	out := make([]int, len(r.Repairs))
	for i, rep := range r.Repairs {
		out[i] = rep.Index
	}
	return out
}

// sliceFeatures are the per-slice statistics every detector reads.
type sliceFeatures struct {
	satFrac   float64
	constRows int
	std       float64
	rowMean   []float64
	// colNorm is the column-mean profile divided by the slice's mean
	// intensity: the per-slice charging offset cancels, so profile
	// ratios between neighbors reflect genuine column damage.
	colNorm []float64
}

// qualityGate screens the raw slice stack, classifies outliers against
// the fault models and repairs them by interpolating from the nearest
// healthy neighbors. Healthy slices pass through by pointer, so a clean
// stack is returned bit-identical. The gate is deterministic for every
// worker count: features are computed into index-addressed tables and
// classification is sequential.
func qualityGate(acq *sem.Acquisition, o Options) (RepairReport, []*img.Gray, error) {
	slices := acq.Slices
	n := len(slices)
	rep := RepairReport{Checked: n}
	if n < 3 {
		return rep, slices, nil
	}
	q := o.Quality.withDefaults()
	dwell := acq.Options.DwellUS
	if dwell <= 0 {
		dwell = sem.DefaultOptions().DwellUS
	}
	noiseFloor := sem.NoiseSigma(dwell)

	feats := make([]sliceFeatures, n)
	err := par.ForEach(o.Workers, n, func(i int) error {
		if err := slices[i].Validate(); err != nil {
			return fmt.Errorf("core: quality gate slice %d: %w", i, err)
		}
		feats[i] = features(slices[i], q.SatLevel)
		return nil
	})
	if err != nil {
		return rep, nil, err
	}

	flagged := make([]fault.Kind, n)
	metric := make([]float64, n)
	// Classification is sequential and first-detector-wins, so the
	// per-kind detection counters are deterministic for every worker
	// count (only the feature/MI tables above fan out).
	flag := func(i int, k fault.Kind, m float64) {
		if flagged[i] == fault.KindNone {
			flagged[i], metric[i] = k, m
			o.Obs.Count("quality.detect."+k.String(), 1)
			o.Obs.Debug("quality gate flagged", "slice", i, "kind", k.String(), "metric", m)
		}
	}

	// Detector 1: constant rows — detector dropout. Shot noise makes an
	// exactly-constant row impossible on an acquired slice.
	for i, f := range feats {
		if f.constRows > 0 {
			flag(i, fault.KindDetectorDropout, float64(f.constRows))
		}
	}
	// Detector 2: saturated area — charging flare. Nominal material
	// intensities stay far below the detector ceiling.
	for i, f := range feats {
		if f.satFrac >= q.SatFrac {
			flag(i, fault.KindChargingFlare, f.satFrac)
		}
	}
	// Detector 3: intensity variation below the shot-noise floor —
	// dropped slice. Even a featureless oxide slice carries the full
	// beam noise; a skipped frame does not.
	for i, f := range feats {
		if f.std < q.DropNoiseFactor*noiseFloor {
			flag(i, fault.KindDroppedSlice, f.std)
		}
	}
	// Detector 4: profile-offset outlier — drift burst. Each slice i in
	// the *unflagged* subsequence (bridging across already-flagged
	// slices, so a burst next to another fault is still tested against
	// genuine neighbors) is compared locally: the profile shift from the
	// previous healthy slice p into i, minus the shift from p to the
	// next healthy slice s with i skipped. A burst is a one-slice
	// excursion, so the inbound shift is large while the skip shift is
	// near zero; a real persistent stage step moves both equally and
	// cancels. Both axes are estimated — rows for the vertical
	// component, normalized columns for the lateral one. A nonzero
	// estimate only counts as motion when the shifted profiles match
	// almost perfectly (a pure translation); structural transitions
	// along the stack prefer nonzero shifts too, but never that cleanly.
	var healthy []int
	for i, k := range flagged {
		if k == fault.KindNone {
			healthy = append(healthy, i)
		}
	}
	// displacement estimates slice i's offset along one profile axis
	// from both adjacent pairs in the subsequence. A pair votes when
	// its correlation clears BurstMinCorr: the inbound shift p->i reads
	// the displacement directly, the outbound shift i->s reads its
	// negation (the stack returns to the true position after a
	// one-slice excursion). Two guards stop the blame from landing on
	// the healthy neighbor of an excursed slice, both judged at the
	// lower BurstVetoCorr bar: a near-zero estimate from the opposite
	// pair contradicts a large vote (the slice is demonstrably in
	// place), and an outbound-only vote is dismissed when the next
	// slice's own return pair explains the shared shift as *its*
	// excursion — that slice is flagged on its own turn instead.
	axisShift := func(ax func(sliceFeatures) []float64, a, b int) (float64, float64) {
		d, c := profileShift(ax(feats[a]), ax(feats[b]), q.BurstProbePx)
		return float64(d), c
	}
	displacement := func(ax func(sliceFeatures) []float64, p, i, s, ss int) float64 {
		vIn, cin := axisShift(ax, p, i)
		dOut, cout := axisShift(ax, i, s)
		vOut := -dOut
		agree := math.Abs(vIn-vOut) <= 1
		switch {
		case cin >= q.BurstMinCorr:
			if cout >= q.BurstVetoCorr && math.Abs(vOut) <= 1 && !agree {
				return 0
			}
			return vIn
		case cout >= q.BurstMinCorr:
			if cin >= q.BurstVetoCorr && math.Abs(vIn) <= 1 && !agree {
				return 0
			}
			if ss >= 0 && math.Abs(dOut) > 1 {
				dRet, cRet := axisShift(ax, s, ss)
				if cRet >= q.BurstVetoCorr && math.Abs(-dRet-dOut) <= 1 {
					return 0
				}
			}
			return vOut
		}
		return 0
	}
	rowsOf := func(f sliceFeatures) []float64 { return f.rowMean }
	colsOf := func(f sliceFeatures) []float64 { return f.colNorm }
	// A flagged slice leaves the subsequence immediately, so the test
	// after a detected burst bridges over it instead of mistaking the
	// burst's confident return translation for the next slice's fault.
	for t := 1; t+1 < len(healthy); {
		p, i, s := healthy[t-1], healthy[t], healthy[t+1]
		ss := -1
		if t+2 < len(healthy) {
			ss = healthy[t+2]
		}
		resY := math.Abs(displacement(rowsOf, p, i, s, ss))
		resX := math.Abs(displacement(colsOf, p, i, s, ss))
		if resY >= q.BurstDY || resX >= q.BurstDX {
			flag(i, fault.KindDriftBurst, math.Max(resY, resX))
			healthy = append(healthy[:t], healthy[t+1:]...)
			continue
		}
		t++
	}
	// Detector 5: column-mean attenuation against the nearest unflagged
	// neighbor on each side — curtaining. The elementwise *minimum* of
	// the neighbor profiles is the reference, so a structure legitimately
	// ending between two slices (present on one side only) never counts
	// as damage.
	for i := 0; i < n; i++ {
		if flagged[i] != fault.KindNone {
			continue
		}
		ref := neighborColMin(feats, flagged, i)
		if ref == nil {
			continue
		}
		damaged, cols := 0, 0
		for x := range ref {
			if ref[x] < q.CurtainMinCol {
				continue
			}
			cols++
			if feats[i].colNorm[x] < q.CurtainResid*ref[x] {
				damaged++
			}
		}
		if cols == 0 {
			continue
		}
		if frac := float64(damaged) / float64(cols); frac >= q.CurtainColFrac {
			flag(i, fault.KindCurtaining, frac)
		}
	}
	// Detector 6: MI catch-all — any anomaly that slipped the models.
	// The floor is relative to the *local* median pair MI, because the
	// natural MI level varies hugely along the stack (featureless
	// regions share only noise).
	type pairMI struct {
		mi    float64
		valid bool
	}
	mis := make([]pairMI, n-1)
	err = par.ForEach(o.Workers, n-1, func(i int) error {
		if flagged[i] != fault.KindNone || flagged[i+1] != fault.KindNone {
			return nil
		}
		mi, err := register.MutualInformation(slices[i], slices[i+1], q.MIBins)
		if err != nil {
			return fmt.Errorf("core: quality gate pair %d: %w", i, err)
		}
		mis[i] = pairMI{mi: mi, valid: true}
		o.Obs.Count("quality.mi_evals", 1)
		return nil
	})
	if err != nil {
		return rep, nil, err
	}
	for i := 0; i < n; i++ {
		if flagged[i] != fault.KindNone {
			continue
		}
		// Local healthy MI scale: valid pairs within MIWindow of the
		// slice, excluding the slice's own pairs.
		var local []float64
		for j := i - 1 - q.MIWindow; j <= i+q.MIWindow; j++ {
			if j < 0 || j >= n-1 || j == i-1 || j == i || !mis[j].valid {
				continue
			}
			local = append(local, mis[j].mi)
		}
		if len(local) < 4 {
			continue
		}
		sort.Float64s(local)
		floor := q.MIFloor * local[len(local)/2]
		low, pairs := true, 0
		worst := math.Inf(1)
		for _, j := range []int{i - 1, i} {
			if j < 0 || j >= n-1 || !mis[j].valid {
				continue
			}
			pairs++
			if mis[j].mi >= floor {
				low = false
			}
			if mis[j].mi < worst {
				worst = mis[j].mi
			}
		}
		if pairs > 0 && low {
			flag(i, fault.KindUnknown, worst)
		}
	}

	// Repair: interpolate every flagged slice from its nearest healthy
	// neighbors; healthy slices pass through by pointer.
	out := make([]*img.Gray, n)
	for i := range slices {
		if flagged[i] == fault.KindNone {
			out[i] = slices[i]
		}
	}
	for i := 0; i < n; i++ {
		if flagged[i] == fault.KindNone {
			continue
		}
		j, k := i-1, i+1
		for j >= 0 && flagged[j] != fault.KindNone {
			j--
		}
		for k < n && flagged[k] != fault.KindNone {
			k++
		}
		action := "none"
		switch {
		case j >= 0 && k < n:
			w := float64(k-i) / float64(k-j)
			g := img.New(slices[j].W, slices[j].H)
			for p := range g.Pix {
				g.Pix[p] = w*slices[j].Pix[p] + (1-w)*slices[k].Pix[p]
			}
			out[i] = g
			action = fmt.Sprintf("interp(%d,%d)", j, k)
		case j >= 0:
			out[i] = slices[j].Clone()
			action = fmt.Sprintf("copy(%d)", j)
		case k < n:
			out[i] = slices[k].Clone()
			action = fmt.Sprintf("copy(%d)", k)
		default:
			// Every slice is flagged: nothing healthy to repair from.
			out[i] = slices[i]
		}
		rep.Repairs = append(rep.Repairs, SliceRepair{
			Index: i, Kind: flagged[i], Metric: metric[i], Action: action,
		})
		o.Obs.Debug("quality gate repaired", "slice", i, "kind", flagged[i].String(), "action", action)
	}
	o.Obs.Count("quality.repaired", int64(len(rep.Repairs)))
	return rep, out, nil
}

// features computes the per-slice statistics in one pass over the
// pixels plus a row/column-profile pass.
func features(g *img.Gray, satLevel float64) sliceFeatures {
	f := sliceFeatures{
		rowMean: make([]float64, g.H),
		colNorm: make([]float64, g.W),
	}
	sat := 0
	for y := 0; y < g.H; y++ {
		first := g.At(0, y)
		constRow := true
		var rowSum float64
		for x := 0; x < g.W; x++ {
			v := g.At(x, y)
			if v >= satLevel {
				sat++
			}
			if v != first {
				constRow = false
			}
			rowSum += v
			f.colNorm[x] += v
		}
		if constRow && g.W > 1 {
			f.constRows++
		}
		f.rowMean[y] = rowSum / float64(g.W)
	}
	var mean float64
	for x := range f.colNorm {
		f.colNorm[x] /= float64(g.H)
		mean += f.colNorm[x]
	}
	mean /= float64(g.W)
	if mean > 1e-9 {
		for x := range f.colNorm {
			f.colNorm[x] /= mean
		}
	}
	f.satFrac = float64(sat) / float64(len(g.Pix))
	f.std = g.Statistics().Std
	return f
}

// profileShift returns the integer shift s in [-probe, probe] that
// maximizes the normalized correlation between profile a and profile b
// displaced by s (b[y] matched against a[y-s]), preferring the smaller
// magnitude on ties, along with the winning correlation. Flat profiles
// return zero.
func profileShift(a, b []float64, probe int) (int, float64) {
	n := len(a)
	if n != len(b) || n < 4 {
		return 0, 0
	}
	if probe > n/2 {
		probe = n / 2
	}
	best, bestCorr := 0, math.Inf(-1)
	for _, s := range shiftOrder(probe) {
		lo, hi := 0, n
		if s > 0 {
			lo = s
		} else {
			hi = n + s
		}
		if hi-lo < 4 {
			continue
		}
		var ma, mb float64
		for y := lo; y < hi; y++ {
			ma += a[y-s]
			mb += b[y]
		}
		cnt := float64(hi - lo)
		ma, mb = ma/cnt, mb/cnt
		var cov, va, vb float64
		for y := lo; y < hi; y++ {
			da, db := a[y-s]-ma, b[y]-mb
			cov += da * db
			va += da * da
			vb += db * db
		}
		if va == 0 || vb == 0 {
			continue
		}
		if corr := cov / math.Sqrt(va*vb); corr > bestCorr+1e-12 {
			bestCorr = corr
			best = s
		}
	}
	if math.IsInf(bestCorr, -1) {
		bestCorr = 0
	}
	return best, bestCorr
}

// shiftOrder yields 0, -1, 1, -2, 2, ... so that the smaller-magnitude
// shift wins ties deterministically.
func shiftOrder(probe int) []int {
	out := make([]int, 0, 2*probe+1)
	out = append(out, 0)
	for s := 1; s <= probe; s++ {
		out = append(out, -s, s)
	}
	return out
}

// neighborColMin returns the elementwise minimum of the normalized
// column profiles of the nearest unflagged neighbor on each side of
// slice i, so a structure legitimately ending between two slices
// (present on one side only) never counts as damage.
func neighborColMin(feats []sliceFeatures, flagged []fault.Kind, i int) []float64 {
	var profiles [][]float64
	for _, dir := range []int{-1, 1} {
		for j := i + dir; j >= 0 && j < len(feats); j += dir {
			if flagged[j] == fault.KindNone {
				profiles = append(profiles, feats[j].colNorm)
				break
			}
		}
	}
	if len(profiles) == 0 {
		return nil
	}
	out := append([]float64(nil), profiles[0]...)
	for _, p := range profiles[1:] {
		for x := range out {
			if p[x] < out[x] {
				out[x] = p[x]
			}
		}
	}
	return out
}
