package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/denoise"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/layout"
	"repro/internal/netex"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/register"
	"repro/internal/sem"
	"repro/internal/volume"
)

// streamSource produces the raw slice stack in ascending index order,
// calling emit once per slice. The producer owns nothing after emit
// returns; emitted images are never mutated downstream, so a source may
// emit long-lived slices (acq.Slices) by pointer.
type streamSource func(ctx context.Context, emit func(i int, g *img.Gray) error) error

// streamAcqSource adapts a materialized acquisition into a stream
// source, checking the context between slices like every barrier stage.
func streamAcqSource(acq *sem.Acquisition) streamSource {
	return func(ctx context.Context, emit func(int, *img.Gray) error) error {
		for i, g := range acq.Slices {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := emit(i, g); err != nil {
				return err
			}
		}
		return nil
	}
}

// denoiseSliceInto is denoiseSlice writing into a caller-provided
// buffer of the source's dimensions, with per-worker scratch reuse. The
// caller has already rejected unknown denoiser names.
func denoiseSliceInto(ctx context.Context, dst, src *img.Gray, o Options, s *denoise.Scratch) error {
	den := o.Denoise
	if den.Obs == nil {
		den.Obs = o.Obs
	}
	switch o.Denoiser {
	case "split-bregman":
		return denoise.SplitBregmanInto(ctx, dst, src, den, s)
	case "none", "":
		copy(dst.Pix, src.Pix)
		return nil
	default: // "chambolle"
		return denoise.ChambolleInto(ctx, dst, src, den, s)
	}
}

// streamItem is one slice in flight between pipeline stages.
type streamItem struct {
	i int
	g *img.Gray
}

// streamCore is the bounded-memory screen + denoise engine shared by
// the streaming reconstruction and the streaming preprocess: a feeder
// goroutine runs the source through the incremental quality gate, a
// fan-out of denoise workers pulls gated slices off a bounded ring,
// denoises each into a pooled buffer (per-worker scratch, flat-field
// applied) and a reordering consumer hands them to consume in strict
// index order. Back-pressure is structural: both rings hold at most
// window items, so a slow consumer stalls the producer instead of
// letting slices pile up.
//
// consume owns each buffer it is handed (Put it back, keep it, or pass
// it on) — including on the call that returns an error. Buffers still
// in flight when the pipeline aborts are returned to the pool here.
//
// The output is byte-identical to the barrier stages for any worker
// count and window: the gate is sequential, each slice's denoise result
// depends only on that slice, and consume observes ascending order.
func streamCore(ctx context.Context, n int, src streamSource, dwellUS float64, o Options, pool *img.Pool,
	consume func(ctx context.Context, i int, g *img.Gray) error) (RepairReport, error) {
	ob := o.Obs
	W := par.Count(o.Workers)
	window := o.StreamWindow
	if window < 1 {
		window = 2*W + 2
	}
	ectx, cancel := context.WithCancel(ctx)
	defer cancel()
	var failOnce sync.Once
	var failErr error
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			cancel()
		})
	}

	gateCh := make(chan streamItem, window)
	denCh := make(chan streamItem, window)

	send := func(i int, g *img.Gray) error {
		select {
		case gateCh <- streamItem{i, g}:
			return nil
		case <-ectx.Done():
			return ectx.Err()
		}
	}
	var gate *gateStream
	var gateSp *obs.Span
	if !o.Quality.Disabled {
		gateSp = ob.WithLaneOffset(1).StartSpan(StageQualityGate)
		gate = newGateStream(o, n, dwellUS, send)
	}
	denSp := ob.WithLaneOffset(2).StartSpan(StageDenoise)

	go func() {
		defer close(gateCh)
		defer gateSp.End()
		emit := send
		if gate != nil {
			emit = gate.push
		}
		if err := src(ectx, emit); err != nil {
			fail(err)
			return
		}
		if gate != nil {
			if err := gate.finish(); err != nil {
				fail(err)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < W; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := denSp.ChildWorker(fmt.Sprintf("%s/worker%d", StageDenoise, w), ob.Lane()+3+w)
			defer ws.End()
			scratch := &denoise.Scratch{}
			for item := range gateCh {
				dst := pool.Get(item.g.W, item.g.H)
				if err := denoiseSliceInto(ectx, dst, item.g, o, scratch); err != nil {
					pool.Put(dst)
					fail(fmt.Errorf("core: denoise slice %d: %w", item.i, err))
					return
				}
				flatField(dst)
				select {
				case denCh <- streamItem{item.i, dst}:
				case <-ectx.Done():
					pool.Put(dst)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(denCh)
	}()

	pending := make(map[int]*img.Gray, window)
	next := 0
	for item := range denCh {
		if ectx.Err() != nil {
			pool.Put(item.g)
			continue
		}
		pending[item.i] = item.g
		for {
			g, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := consume(ectx, next, g); err != nil {
				fail(err)
				break
			}
			next++
		}
	}
	denSp.End()
	for _, g := range pending {
		pool.Put(g)
	}
	// Every goroutine has exited (denCh closes after the workers, which
	// exit after the feeder closes gateCh), so failErr and the gate's
	// report are stable here.
	if failErr != nil {
		return RepairReport{}, failErr
	}
	var rep RepairReport
	if gate != nil {
		rep = gate.rep
		if k := len(rep.Repairs); k > 0 {
			ob.Info("quality gate", "checked", rep.Checked, "repaired", k)
		}
	}
	if next != n {
		return rep, fmt.Errorf("core: stream: delivered %d of %d slices", next, n)
	}
	return rep, nil
}

// streamPreprocess is preprocessCtx rebuilt on the streaming engine: it
// produces the identical preOut (gate report, denoised + aligned stack)
// while the gate and the denoise fan-out overlap slice by slice. The
// stack alignment itself stays the barrier's sequential AlignStackCtx —
// this path exists for checkpointed runs, whose aligned-stack artifact
// must materialize anyway, so the denoised slices are collected rather
// than pooled.
func streamPreprocess(ctx context.Context, acq *sem.Acquisition, o Options) (preOut, error) {
	var out preOut
	switch o.Denoiser {
	case "chambolle", "split-bregman", "none", "":
	default:
		return out, fmt.Errorf("core: unknown denoiser %q", o.Denoiser)
	}
	ob := o.Obs
	n := len(acq.Slices)
	slices := make([]*img.Gray, n)
	rep, err := streamCore(ctx, n, streamAcqSource(acq), acq.Options.DwellUS, o, nil,
		func(_ context.Context, i int, g *img.Gray) error {
			slices[i] = g
			return nil
		})
	if err != nil {
		return out, err
	}
	out.repairs = rep
	if o.Register.MaxShift > 0 && n > 1 {
		sp := ob.StartSpan(StageAlign)
		aligned, sres, err := register.AlignStackCtx(ctx, slices, regOptions(o))
		sp.End()
		if err != nil {
			return out, fmt.Errorf("core: align: %w", err)
		}
		out.slices, out.didAlign = aligned, true
		out.alignFallbacks = sres.Fallbacks()
		if out.alignFallbacks > 0 {
			ob.Info("alignment degraded", "fallbacks", out.alignFallbacks)
		}
		return out, nil
	}
	out.slices = slices
	return out, nil
}

// streamFold folds denoised slices into the reconstruction's per-layer
// planar views as they arrive: pairwise alignment against the previous
// denoised slice, residual-drift estimation on the aligned pair, and
// the depth-band column sums of the planar average — all without ever
// materializing the denoised stack, the aligned stack or the volume.
// The arithmetic mirrors AlignStackCtx, ResidualDriftCtx and
// volume.PlanarAverage operation for operation (same accumulation
// order, same multiply-by-reciprocal), so the folded views are
// bit-identical to the barrier's.
type streamFold struct {
	o       Options
	regOpts register.Options
	pool    *img.Pool
	doAlign bool
	n       int

	layers []layout.Layer
	bands  [][2]int
	inv    []float64
	views  []*img.Gray
	w, h   int

	prevDen     *img.Gray // last denoised slice (alignment reference)
	prevAligned *img.Gray // last aligned slice (residual reference)
	acc         register.Shift
	fallbacks   int
	residSum    float64
}

// consume implements the streamCore contract: it owns den on every
// path, returning it to the pool once no longer needed (or on error).
func (f *streamFold) consume(ctx context.Context, i int, den *img.Gray) error {
	if !f.doAlign {
		if err := f.checkSlice(i, den); err != nil {
			f.pool.Put(den)
			return err
		}
		f.fold(i, den)
		f.pool.Put(den)
		return nil
	}
	if i == 0 {
		if err := f.checkSlice(0, den); err != nil {
			f.pool.Put(den)
			return err
		}
		// AlignStackCtx emits slice 0 as a clone with zero shift.
		a := f.pool.Get(den.W, den.H)
		copy(a.Pix, den.Pix)
		f.prevDen = den
		f.fold(0, a)
		f.prevAligned = a
		return nil
	}
	// Pairwise on the raw denoised slices, exactly like AlignStackCtx:
	// the absolute correction is the running shift sum.
	r, err := register.AlignRobustCtx(ctx, f.prevDen, den, f.regOpts)
	if err != nil {
		f.pool.Put(den)
		return fmt.Errorf("core: align: %w", fmt.Errorf("register: slice %d: %w", i, err))
	}
	f.acc = f.acc.Add(r.Shift)
	if r.Fallback {
		f.fallbacks++
	}
	f.pool.Put(f.prevDen)
	f.prevDen = den
	a := f.pool.Get(den.W, den.H)
	if err := den.TranslateInto(a, f.acc.DX, f.acc.DY); err != nil {
		f.pool.Put(a)
		return err
	}
	if err := f.checkSlice(i, a); err != nil {
		f.pool.Put(a)
		return err
	}
	// Residual drift re-aligns the *aligned* pair, ascending, exactly
	// like ResidualDriftCtx.
	s, _, err := register.AlignCtx(ctx, f.prevAligned, a, f.regOpts)
	if err != nil {
		f.pool.Put(a)
		return fmt.Errorf("core: residual: %w", err)
	}
	f.residSum += math.Hypot(float64(s.DX), float64(s.DY))
	f.fold(i, a)
	f.pool.Put(f.prevAligned)
	f.prevAligned = a
	return nil
}

// checkSlice mirrors volume.FromStack's validation (same error chain)
// and, on the first slice, sizes the views and checks every layer's
// depth band against the slice height exactly as resliceLayer would.
func (f *streamFold) checkSlice(i int, g *img.Gray) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("core: stack: %w", fmt.Errorf("volume: slice %d: %w", i, err))
	}
	if i == 0 {
		f.w, f.h = g.W, g.H
		return f.initViews()
	}
	if g.W != f.w || g.H != f.h {
		return fmt.Errorf("core: stack: %w", &volume.SliceSizeError{
			Index: i, W: g.W, H: g.H, WantW: f.w, WantH: f.h,
		})
	}
	return nil
}

func (f *streamFold) initViews() error {
	f.views = make([]*img.Gray, len(f.layers))
	f.bands = make([][2]int, len(f.layers))
	f.inv = make([]float64, len(f.layers))
	for li, layer := range f.layers {
		band, _ := chipgen.Band(layer)
		// Average over the band interior, like resliceLayer: residual
		// slice misalignment only bleeds into the band's edge rows.
		y0, y1 := band.Y0, band.Y1
		if y1-y0 > 2 {
			y0, y1 = y0+1, y1-1
		}
		if y0 < 0 || y1 > f.h || y0 >= y1 {
			return fmt.Errorf("core: planar view of %s: %w", layer,
				fmt.Errorf("volume: depth band [%d,%d) out of [0,%d)", y0, y1, f.h))
		}
		f.bands[li] = [2]int{y0, y1}
		f.inv[li] = 1.0 / float64(y1-y0)
		f.views[li] = img.New(f.w, f.n)
	}
	return nil
}

// fold accumulates slice z into every layer view: per column, the
// ascending-y sum over the band times the precomputed reciprocal —
// volume.PlanarAverage's exact expression, one z row at a time.
func (f *streamFold) fold(z int, g *img.Gray) {
	for li := range f.layers {
		y0, y1 := f.bands[li][0], f.bands[li][1]
		view, inv := f.views[li], f.inv[li]
		for x := 0; x < f.w; x++ {
			var s float64
			for y := y0; y < y1; y++ {
				s += g.Pix[y*f.w+x]
			}
			view.Set(x, z, s*inv)
		}
	}
}

// release returns the fold's held references to the pool; safe to call
// on any partial state.
func (f *streamFold) release() {
	if f.prevDen != nil {
		f.pool.Put(f.prevDen)
		f.prevDen = nil
	}
	if f.prevAligned != nil {
		f.pool.Put(f.prevAligned)
		f.prevAligned = nil
	}
}

// runStream is RunCtx's fully streaming tail: acquisition renders from
// the lazy plane source inside the pipeline's feeder (under the acquire
// stage span) and flows straight into reconstructStream, so slice count
// — not stack depth — bounds the live set. Slice count and cost are
// derived up front from the source dimensions; they match the
// materialized acquisition's exactly.
func runStream(ctx context.Context, chip *chips.Chip, truth chipgen.GroundTruth,
	planes *chipgen.PlaneSource, window geom.Rect, o Options) (*Result, error) {
	ob := o.Obs
	nx, ny, nz := planes.Dims()
	n := sem.SliceCount(nz, o.SEM.SliceStep)
	cost := sem.CostHoursFor(nx, ny, n, o.SEM.DwellUS)
	src := func(ctx context.Context, emit func(int, *img.Gray) error) error {
		sp := ob.StartSpan(StageAcquire)
		defer sp.End()
		var emitErr error
		err := sem.StreamStackCtx(ctx, planes, o.SEM, func(i, z int, g *img.Gray, drift [2]float64) error {
			if err := emit(i, g); err != nil {
				emitErr = err
				return err
			}
			return nil
		})
		if err != nil {
			if err == emitErr {
				// Downstream failures (gate, cancellation) pass through
				// with their own context; only acquisition's own errors
				// carry the acquire wrap.
				return err
			}
			return fmt.Errorf("core: acquire: %w", err)
		}
		ob.Info("acquired", "chip", chip.ID, "slices", n, "cost_hours", cost)
		return nil
	}
	plan, info, err := reconstructStream(ctx, n, src, o.SEM.DwellUS, window, o)
	if err != nil {
		return nil, err
	}
	ext, err := extractPlan(plan, o)
	if err != nil {
		return nil, err
	}
	return finishResult(chip, truth, ext, plan, info, nil, n, cost, o), nil
}

// reconstructStream is the non-checkpointed reconstruction as a single
// bounded-memory pass: source → incremental quality gate → denoise
// fan-out → pairwise alignment → incremental view fold, then the
// per-layer median, segmentation and plan assembly of PlanFromVolume on
// the folded views. Peak memory holds the pipeline window plus the
// per-layer views instead of four stack-sized intermediates; the
// returned plan and ReconInfo are byte-identical to the Barrier path
// for any worker count and window.
func reconstructStream(ctx context.Context, n int, src streamSource, dwellUS float64,
	window geom.Rect, o Options) (*netex.Plan, ReconInfo, error) {
	var info ReconInfo
	switch o.Denoiser {
	case "chambolle", "split-bregman", "none", "":
	default:
		return nil, info, fmt.Errorf("core: unknown denoiser %q", o.Denoiser)
	}
	ob := o.Obs
	W := par.Count(o.Workers)
	doAlign := o.Register.MaxShift > 0 && n > 1

	// Each concurrently-open stage span gets a private lane relative to
	// the run's base lane (gate +1, denoise +2, denoise workers +3..,
	// then the consumer-side stages), keeping per-lane intervals
	// disjoint-or-nested for the trace.
	var alignSp, residSp *obs.Span
	if doAlign {
		alignSp = ob.WithLaneOffset(3 + W).StartSpan(StageAlign)
		residSp = ob.WithLaneOffset(4 + W).StartSpan("align/residual")
	}
	assembleSp := ob.WithLaneOffset(5 + W).StartSpan(StageAssemble)
	defer assembleSp.End()
	defer residSp.End()
	defer alignSp.End()

	f := &streamFold{
		o:       o,
		regOpts: regOptions(o),
		pool:    o.Pool,
		doAlign: doAlign,
		n:       n,
		layers:  bandedLayers(),
	}
	rep, err := streamCore(ctx, n, src, dwellUS, o, o.Pool, f.consume)
	f.release()
	if err != nil {
		return nil, info, err
	}
	if n == 0 {
		return nil, info, fmt.Errorf("core: stack: %w", fmt.Errorf("volume: empty stack"))
	}
	info.Repairs = rep
	info.AlignFallbacks = f.fallbacks
	if doAlign {
		if f.fallbacks > 0 {
			ob.Info("alignment degraded", "fallbacks", f.fallbacks)
		}
		info.ResidualDriftPx = f.residSum / float64(n-1)
	}
	alignSp.End()
	residSp.End()
	assembleSp.End()
	if pool := o.Pool; pool != nil {
		st := pool.Stats()
		ob.Gauge("img.pool.hits", float64(st.Hits))
		ob.Gauge("img.pool.misses", float64(st.Misses))
		ob.Gauge("img.pool.peak_live", float64(st.PeakLive))
	}

	// The PlanFromVolume tail on the folded views: per-layer median,
	// then segmentation, then plan assembly in layout order.
	err = ob.ForEachCtx(ctx, StageReslice, o.Workers, len(f.layers), func(_ context.Context, i int) error {
		f.views[i] = img.MedianFilter(f.views[i], 1)
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	perLayer := make([][]geom.Rect, len(f.layers))
	err = ob.ForEachCtx(ctx, StageSegment, o.Workers, len(f.layers), func(_ context.Context, i int) error {
		perLayer[i] = segmentLayer(f.views[i], window, o)
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	plan := netex.NewPlan()
	for i, layer := range f.layers {
		for _, r := range perLayer[i] {
			plan.Add(layer, r)
		}
	}
	return plan, info, nil
}
