package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/geom"
	"repro/internal/sem"
	"repro/internal/volume"
)

var sharedAcq struct {
	once   sync.Once
	acq    *sem.Acquisition
	window geom.Rect
	err    error
}

// testAcquisition builds (once per test run) the noisy B4 acquisition the
// determinism tests replay through both the serial and parallel
// pipelines.
func testAcquisition(t *testing.T) (*sem.Acquisition, geom.Rect) {
	t.Helper()
	sharedAcq.once.Do(func() {
		o := fastOptions()
		chip := chips.ByID("B4")
		region, err := chipgen.Generate(chipgen.DefaultConfig(chip))
		if err != nil {
			sharedAcq.err = err
			return
		}
		window := region.Cell.Bounds()
		vol, err := chipgen.Voxelize(region.Cell, window, o.VoxelNM)
		if err != nil {
			sharedAcq.err = err
			return
		}
		o.SEM.Detector = chip.Detector
		acq, err := sem.AcquireStack(vol, o.SEM)
		if err != nil {
			sharedAcq.err = err
			return
		}
		sharedAcq.acq, sharedAcq.window = acq, window
	})
	if sharedAcq.err != nil {
		t.Fatal(sharedAcq.err)
	}
	return sharedAcq.acq, sharedAcq.window
}

// The concurrency layer must not change a single byte of the output:
// for every denoiser, a saturated worker pool reproduces the Workers=1
// plan and residual exactly.
func TestReconstructParallelMatchesSerial(t *testing.T) {
	acq, window := testAcquisition(t)
	for _, den := range []string{"chambolle", "split-bregman", "none"} {
		t.Run(den, func(t *testing.T) {
			o := fastOptions()
			o.Denoiser = den
			o.Workers = 1
			wantPlan, wantInfo, err := Reconstruct(acq, window, o)
			if err != nil {
				t.Fatal(err)
			}
			o.Workers = 6
			gotPlan, gotInfo, err := Reconstruct(acq, window, o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotInfo, wantInfo) {
				t.Errorf("recon info %+v != serial %+v", gotInfo, wantInfo)
			}
			if !reflect.DeepEqual(gotPlan, wantPlan) {
				t.Errorf("parallel plan differs from serial plan")
			}
		})
	}
}

func TestPlanarViewsParallelMatchesSerial(t *testing.T) {
	acq, _ := testAcquisition(t)
	o := fastOptions()
	o.Workers = 1
	want, err := PlanarViews(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 5
	got, err := PlanarViews(acq, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("view count %d != %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("missing view %s", name)
		}
		if g.W != w.W || g.H != w.H {
			t.Fatalf("%s: dims %dx%d != %dx%d", name, g.W, g.H, w.W, w.H)
		}
		for i := range w.Pix {
			if g.Pix[i] != w.Pix[i] {
				t.Fatalf("%s: pixel %d differs", name, i)
			}
		}
	}
}

// PlanFromVolume assembles per-layer results in layout order, so the
// plan (rectangle order included) is identical for any worker count.
func TestPlanFromVolumeParallelMatchesSerial(t *testing.T) {
	acq, window := testAcquisition(t)
	o := fastOptions()
	o.Denoiser = "none"
	o.Workers = 1
	pre, err := preprocessCtx(context.Background(), acq, o)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := volume.FromStack(pre.slices)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PlanFromVolume(vol, window, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 7
	got, err := PlanFromVolume(vol, window, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel PlanFromVolume differs from serial")
	}
}
