// Package core orchestrates the end-to-end HiFi-DRAM pipeline: ground
// truth generation, FIB/SEM acquisition, post-processing (denoise, align,
// reslice to planar views), segmentation, circuit extraction, measurement
// and fidelity scoring — the complete path of Figs. 3 and 5-8.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/ckpt"
	"repro/internal/denoise"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/img"
	"repro/internal/layout"
	"repro/internal/measure"
	"repro/internal/netex"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/register"
	"repro/internal/sem"
	"repro/internal/volume"
)

// Options configures a pipeline run.
type Options struct {
	// Units sizes the generated region (SA units per band).
	Units int
	// VoxelNM is the voxelization resolution.
	VoxelNM int64
	// SEM configures the microscope simulation.
	SEM sem.Options
	// Denoiser selects the TV algorithm: "chambolle", "split-bregman"
	// or "none".
	Denoiser string
	// Denoise parameterizes it.
	Denoise denoise.Options
	// Register parameterizes the slice alignment.
	Register register.Options
	// MinComponentPx prunes segmentation specks.
	MinComponentPx int
	// JitterPct/JitterSeed add process variation to the generated
	// ground truth (see chipgen.Config).
	JitterPct  float64
	JitterSeed int64
	// Faults, when non-nil, deterministically corrupts the acquisition
	// before reconstruction (fault.Inject); the ground-truth report is
	// surfaced on Result.Injected so the quality gate can be scored.
	Faults *fault.Plan
	// Quality configures the slice-quality gate that screens and
	// repairs the stack before denoising. The zero value enables the
	// gate with default thresholds; it stays silent on clean stacks.
	Quality QualityOptions
	// Workers bounds the worker pool the post-processing fans out on:
	// per-slice denoising, the candidate-shift search inside the MI
	// alignment, and per-layer planar reslicing + segmentation. Values
	// below 1 mean runtime.NumCPU(). The pipeline output is byte-
	// identical for every worker count — each unit of work is
	// index-addressed with no shared mutable state, and assembly happens
	// in the sequential order.
	Workers int
	// Obs is the observability sink: per-stage spans (see Stages),
	// per-worker child spans on the fan-outs, deterministic counters and
	// progress logging, propagated into the register, denoise and fault
	// layers unless those options carry their own. Nil disables all
	// instrumentation. Observation never perturbs results: with Obs set
	// or nil, for any worker count, the pipeline output is byte-
	// identical, and the counter values themselves are deterministic.
	Obs *obs.Observer
	// Ckpt, when non-nil, persists stage-boundary artifacts (acquire,
	// aligned, plan, netex, views) into the store so an interrupted run
	// can resume. Keys derive from CkptUnit plus a fingerprint of the
	// result-affecting options — worker counts and observability sinks
	// are excluded, so any worker count shares the same checkpoints.
	// Writes are atomic and checksummed; persistence failures degrade
	// the run to non-resumable but never fail it.
	Ckpt *ckpt.Store
	// Resume enables loading from Ckpt: a verified checkpoint skips its
	// stage and yields byte-identical output to recomputing; a missing,
	// torn or checksum-mismatched one is counted ("ckpt.miss" /
	// "ckpt.corrupt") and transparently recomputed. With Resume false
	// the run only writes checkpoints, never trusts existing ones.
	Resume bool
	// CkptUnit keys this run's checkpoints. RunCtx defaults it to the
	// chip ID and RunOnDieCtx to "<chip>/die", which uniquely identify
	// the pipeline input under the fingerprinted options. Callers
	// invoking ReconstructCtx or PlanarViewsCtx directly must set a
	// unit that uniquely identifies the acquisition themselves; when
	// empty, checkpointing is disabled for safety (an acquisition the
	// options cannot reproduce must not share keys with one they can).
	CkptUnit string
	// Barrier forces the original materialize-everything reconstruction,
	// in which every stage completes over the whole stack before the
	// next starts. The default (false) streams slices through
	// gate → denoise → align → view fold with bounded lookahead, holding
	// a window of slices instead of four full stacks. The two paths are
	// byte-identical by contract for every worker count (pinned by the
	// stream identity tests), so Barrier exists as the reference
	// implementation and for A/B benchmarking, not as a semantic switch.
	Barrier bool
	// StreamWindow caps the in-flight slice window of the streaming
	// reconstruction (the capacity of its inter-stage rings). Values < 1
	// mean 2*workers+2. Larger windows smooth worker imbalance at the
	// cost of proportionally more live buffers; the output is identical
	// for any value.
	StreamWindow int
	// Pool, when non-nil, recycles the streaming reconstruction's image
	// buffers (denoised and aligned slices) across slices — and, when
	// shared, across runs — instead of allocating each fresh. Pooling
	// changes allocation behavior only, never results; the pool's
	// hit/miss/peak-live statistics surface as gauges ("img.pool.*").
	// Nil allocates per slice and lets the GC reclaim.
	Pool *img.Pool
}

// DefaultOptions returns a configuration that survives the default noise
// and drift levels on every studied chip.
func DefaultOptions() Options {
	semOpts := sem.DefaultOptions()
	semOpts.DriftSigmaPx = 0.5
	reg := register.DefaultOptions()
	reg.MaxShift = 4
	// Degrade gracefully instead of trusting a garbage peak: retry with
	// a widened window when the MI peak sits on the search boundary or
	// below the confidence floor, and fall back to the identity shift
	// when retries are exhausted. On clean stacks the peak is interior
	// and confident, so these change nothing.
	reg.MinConfidence = 0.05
	reg.WidenRetries = 2
	den := denoise.DefaultOptions()
	// Gentler fidelity weight than the denoise package default: the
	// cross sections carry 2-4 px features (contacts, fine gates) that
	// stronger TV smoothing erodes before the planar median gets to
	// help.
	den.Lambda = 25
	return Options{
		Units:          2,
		VoxelNM:        4,
		SEM:            semOpts,
		Denoiser:       "chambolle",
		Denoise:        den,
		Register:       reg,
		MinComponentPx: 3,
		Workers:        runtime.NumCPU(),
	}
}

// Result is the outcome of a full pipeline run on one chip.
type Result struct {
	Chip  *chips.Chip
	Truth chipgen.GroundTruth
	// SliceCount and CostHours describe the simulated acquisition.
	SliceCount int
	CostHours  float64
	// ResidualDriftPx is the re-alignment residual after correction.
	ResidualDriftPx float64
	// Repairs is the slice-quality gate's report: which slices were
	// flagged, their classified fault kind, and the repair applied.
	Repairs RepairReport
	// AlignFallbacks counts stack pairs whose MI alignment degraded to
	// the identity-shift fallback.
	AlignFallbacks int
	// Injected is the fault-injection ground truth; nil unless
	// Options.Faults was set.
	Injected *fault.Report
	// Extraction is the reverse-engineered structure.
	Extraction *netex.Result
	// Plan is the segmented rectangle plan the extraction consumed.
	// Exporting the annotated extracted layout
	// (Extraction.AnnotatedCell(Plan, ...)) therefore needs no second
	// reconstruction; the serve layer and extract -gds rely on this.
	Plan *netex.Plan
	// Stats are the per-element measurement statistics.
	Stats map[chips.Element]measure.ElementStats
	// Score is the fidelity against ground truth.
	Score measure.Score
	// Telemetry is the metric snapshot taken when the run completed; nil
	// unless Options.Obs carried a metric registry. Its counters are
	// deterministic (equal inputs and options give equal counters for
	// any worker count); its durations are where all timing lives. With
	// a registry shared across runs (extract -all) the counts are
	// cumulative across the runs finished so far.
	Telemetry *obs.Snapshot
}

// Run executes the full pipeline for one chip.
func Run(chip *chips.Chip, o Options) (*Result, error) {
	return RunCtx(context.Background(), chip, o)
}

// RunCtx is Run with cooperative cancellation and checkpoint/resume.
// Every stage checks the context between its units of work (slices,
// candidate shifts, layers), so cancellation — a deadline, SIGINT — is
// honored promptly and the error unwraps to ctx.Err(). With Options.Ckpt
// set, completed stage boundaries persist to the store as the run goes,
// and with Options.Resume a later invocation with equal options skips
// every stage whose verified checkpoint exists, producing a Result
// byte-identical (Telemetry aside, which reflects the work actually
// performed) to an uninterrupted run.
func RunCtx(ctx context.Context, chip *chips.Chip, o Options) (*Result, error) {
	if chip == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	if o.Units <= 0 || o.VoxelNM <= 0 {
		return nil, fmt.Errorf("core: invalid options (units=%d, voxel=%d)", o.Units, o.VoxelNM)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run: %w", err)
	}
	ob := o.Obs
	ob.Info("run start", "chip", chip.ID, "workers", par.Count(o.Workers))
	cfg := chipgen.DefaultConfig(chip)
	cfg.Units = o.Units
	cfg.JitterPct = o.JitterPct
	cfg.JitterSeed = o.JitterSeed
	sp := ob.StartSpan(StageGenerate)
	region, err := chipgen.Generate(cfg)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("core: generate: %w", err)
	}
	// Use the chip's Table I detector.
	o.SEM.Detector = chip.Detector

	window := region.Cell.Bounds()
	// Ground truth generation stays outside the checkpoint scheme: it is
	// cheap, deterministic, and its Truth is needed for scoring either
	// way. The fingerprint is taken after the detector is resolved so it
	// covers every acquisition-affecting option.
	if o.CkptUnit == "" {
		o.CkptUnit = chip.ID
	}
	ck, err := newCkptRef(o.CkptUnit, o)
	if err != nil {
		sp.End()
		return nil, err
	}
	if !o.Barrier && ck == nil && o.Faults == nil {
		// Fully streaming run: rasterize ground-truth planes lazily and
		// feed acquisition, gate, denoise, alignment and the view fold
		// slice by slice — neither the material volume nor any slice
		// stack is ever materialized. Checkpointing needs stage
		// artifacts and fault injection needs the whole stack, so those
		// runs take the materialized path below.
		planes, err := chipgen.NewPlaneSource(region.Cell, window, o.VoxelNM)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: voxelize: %w", err)
		}
		return runStream(ctx, chip, region.Truth, planes, window, o)
	}
	vol, err := chipgen.Voxelize(region.Cell, window, o.VoxelNM)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: voxelize: %w", err)
	}
	// Fast path: a run killed after the extraction boundary resumes
	// without touching a single imaging stage.
	var na netexArtifact
	if ck.load(CkptNetex, &na) {
		return finishResult(chip, region.Truth, na.Ext, na.Plan, na.Info, na.Injected,
			na.SliceCount, na.CostHours, o), nil
	}
	var acq *sem.Acquisition
	var injected *fault.Report
	var aa acquireArtifact
	if ck.load(CkptAcquire, &aa) {
		acq, injected = aa.Acq, aa.Injected
	} else {
		sp = ob.StartSpan(StageAcquire)
		acq, err = sem.AcquireStackCtx(ctx, vol, o.SEM)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("core: acquire: %w", err)
		}
		ob.Info("acquired", "chip", chip.ID, "slices", len(acq.Slices), "cost_hours", acq.CostHours())
		injected, err = injectFaults(acq, o)
		if err != nil {
			return nil, err
		}
		ck.save(CkptAcquire, acquireArtifact{Acq: acq, Injected: injected})
	}

	plan, info, err := reconstructCkpt(ctx, acq, window, o, ck)
	if err != nil {
		return nil, err
	}
	ext, err := extractPlan(plan, o)
	if err != nil {
		return nil, err
	}
	ck.save(CkptNetex, netexArtifact{
		Ext: ext, Plan: plan, Info: info, Injected: injected,
		SliceCount: len(acq.Slices), CostHours: acq.CostHours(),
	})
	return finishResult(chip, region.Truth, ext, plan, info, injected,
		len(acq.Slices), acq.CostHours(), o), nil
}

// finishResult runs the always-recomputed tail of the pipeline —
// measurement and fidelity scoring, both cheap and deterministic — and
// assembles the Result. Shared by the fresh and fully-resumed paths so
// both produce identical structures.
func finishResult(chip *chips.Chip, truth chipgen.GroundTruth, ext *netex.Result, plan *netex.Plan,
	info ReconInfo, injected *fault.Report, sliceCount int, costHours float64, o Options) *Result {
	ob := o.Obs
	res := &Result{
		Chip: chip, Truth: truth,
		SliceCount: sliceCount, CostHours: costHours,
		ResidualDriftPx: info.ResidualDriftPx,
		Repairs:         info.Repairs,
		AlignFallbacks:  info.AlignFallbacks,
		Injected:        injected,
		Extraction:      ext,
		Plan:            plan,
	}
	sp := ob.StartSpan(StageMeasure)
	res.Stats = measure.FromTransistors(ext.Transistors)
	sp.End()
	sp = ob.StartSpan(StageScore)
	res.Score = measure.CompareToTruth(ext, truth)
	sp.End()
	res.Telemetry = ob.Snapshot()
	ob.Info("run done", "chip", chip.ID,
		"topology", ext.Topology.String(), "correct", res.Score.TopologyCorrect,
		"repairs", len(res.Repairs.Repairs), "align_fallbacks", res.AlignFallbacks)
	return res
}

// injectFaults runs the optional fault injection under its own stage
// span; a nil Options.Faults is a no-op.
func injectFaults(acq *sem.Acquisition, o Options) (*fault.Report, error) {
	if o.Faults == nil {
		return nil, nil
	}
	sp := o.Obs.StartSpan(StageInject)
	defer sp.End()
	injected, err := fault.InjectObserved(acq, *o.Faults, o.Obs)
	if err != nil {
		return nil, fmt.Errorf("core: inject: %w", err)
	}
	return injected, nil
}

// extractPlan runs the circuit extraction under its own stage span.
func extractPlan(plan *netex.Plan, o Options) (*netex.Result, error) {
	sp := o.Obs.StartSpan(StageNetex)
	defer sp.End()
	ext, err := netex.Extract(plan)
	if err != nil {
		return nil, fmt.Errorf("core: extract: %w", err)
	}
	return ext, nil
}

// ReconInfo reports what the reconstruction had to do to the stack
// beyond the nominal path.
type ReconInfo struct {
	// ResidualDriftPx is the post-alignment drift estimate (zero when
	// alignment did not run).
	ResidualDriftPx float64
	// Repairs is the slice-quality gate's report.
	Repairs RepairReport
	// AlignFallbacks counts pairs that degraded to the identity-shift
	// fallback during stack alignment.
	AlignFallbacks int
}

// Reconstruct performs the post-processing of Section IV-C plus planar
// segmentation of Section V-A on an acquisition: screen and repair the
// raw stack (slice-quality gate), denoise every slice, align the stack,
// assemble the volume, extract per-layer planar views and segment them
// into the rectangle plan the circuit extraction consumes.
func Reconstruct(acq *sem.Acquisition, window geom.Rect, o Options) (*netex.Plan, ReconInfo, error) {
	return ReconstructCtx(context.Background(), acq, window, o)
}

// ReconstructCtx is Reconstruct with cooperative cancellation and, when
// Options.Ckpt and Options.CkptUnit are both set, checkpointing of the
// aligned-stack and segmentation boundaries (see Options.CkptUnit for
// the keying contract standalone callers must uphold).
func ReconstructCtx(ctx context.Context, acq *sem.Acquisition, window geom.Rect, o Options) (*netex.Plan, ReconInfo, error) {
	ck, err := newCkptRef(o.CkptUnit, o)
	if err != nil {
		return nil, ReconInfo{}, err
	}
	return reconstructCkpt(ctx, acq, window, o, ck)
}

// reconstructCkpt is the checkpoint-aware reconstruction core: it tries
// the segmentation boundary first (skipping all preprocessing), then the
// aligned-stack boundary (skipping the quality gate, denoising and
// alignment), and recomputes from the acquisition only when neither
// verifies.
func reconstructCkpt(ctx context.Context, acq *sem.Acquisition, window geom.Rect, o Options, ck *ckptRef) (*netex.Plan, ReconInfo, error) {
	if !o.Barrier && ck == nil {
		// No checkpoint boundaries to materialize: reconstruct in a
		// single bounded-memory streaming pass.
		return reconstructStream(ctx, len(acq.Slices), streamAcqSource(acq), acq.Options.DwellUS, window, o)
	}
	var pa planArtifact
	if ck.load(CkptPlan, &pa) {
		return pa.Plan, pa.Info, nil
	}
	var info ReconInfo
	var slices []*img.Gray
	var la alignedArtifact
	if ck.load(CkptAligned, &la) {
		slices = la.Slices
		info = ReconInfo{
			ResidualDriftPx: la.ResidualDriftPx,
			Repairs:         la.Repairs,
			AlignFallbacks:  la.AlignFallbacks,
		}
	} else {
		var pre preOut
		var err error
		if o.Barrier {
			pre, err = preprocessCtx(ctx, acq, o)
		} else {
			// Checkpointed runs must materialize the aligned stack for
			// the artifact either way; stream the gate + denoise
			// prologue and keep the barrier alignment.
			pre, err = streamPreprocess(ctx, acq, o)
		}
		if err != nil {
			return nil, ReconInfo{}, err
		}
		info = ReconInfo{Repairs: pre.repairs, AlignFallbacks: pre.alignFallbacks}
		if pre.didAlign {
			sp := o.Obs.StartSpan("align/residual")
			info.ResidualDriftPx, err = register.ResidualDriftCtx(ctx, pre.slices, regOptions(o))
			sp.End()
			if err != nil {
				return nil, ReconInfo{}, fmt.Errorf("core: residual: %w", err)
			}
		}
		slices = pre.slices
		ck.save(CkptAligned, alignedArtifact{
			Slices: slices, DidAlign: pre.didAlign, Repairs: pre.repairs,
			AlignFallbacks: pre.alignFallbacks, ResidualDriftPx: info.ResidualDriftPx,
		})
	}
	sp := o.Obs.StartSpan(StageAssemble)
	vol, err := volume.FromStack(slices)
	sp.End()
	if err != nil {
		return nil, ReconInfo{}, fmt.Errorf("core: stack: %w", err)
	}
	plan, err := PlanFromVolumeCtx(ctx, vol, window, o)
	if err != nil {
		return nil, ReconInfo{}, err
	}
	ck.save(CkptPlan, planArtifact{Plan: plan, Info: info})
	return plan, info, nil
}

// denoiseSlice applies the configured denoiser to one slice. The caller
// has already rejected unknown denoiser names.
func denoiseSlice(ctx context.Context, s *img.Gray, o Options) (*img.Gray, error) {
	den := o.Denoise
	if den.Obs == nil {
		den.Obs = o.Obs
	}
	switch o.Denoiser {
	case "split-bregman":
		return denoise.SplitBregmanCtx(ctx, s, den)
	case "none", "":
		return s.Clone(), nil
	default: // "chambolle"
		return denoise.ChambolleCtx(ctx, s, den)
	}
}

// regOptions propagates the pipeline worker budget and observability
// sink into the alignment options when the caller has not set them there
// explicitly.
func regOptions(o Options) register.Options {
	reg := o.Register
	if reg.Workers == 0 {
		reg.Workers = o.Workers
	}
	if reg.Obs == nil {
		reg.Obs = o.Obs
	}
	return reg
}

// preOut is preprocess's bundle: the processed stack plus everything the
// robustness machinery observed along the way.
type preOut struct {
	slices         []*img.Gray
	didAlign       bool
	repairs        RepairReport
	alignFallbacks int
}

// preprocessCtx is the screen + denoise + align prologue shared by
// Reconstruct and PlanarViews: the slice-quality gate screens and
// repairs the raw stack, then per-slice TV denoising and flat-fielding
// fan out over Options.Workers, then sequential MI stack alignment
// (guarded exactly like the rest of the pipeline: only when a search
// window is configured and there is more than one slice). ctx is
// checked between slices in the fan-out and between pairs in the
// alignment.
func preprocessCtx(ctx context.Context, acq *sem.Acquisition, o Options) (preOut, error) {
	var out preOut
	switch o.Denoiser {
	case "chambolle", "split-bregman", "none", "":
	default:
		return out, fmt.Errorf("core: unknown denoiser %q", o.Denoiser)
	}
	ob := o.Obs
	raw := acq.Slices
	if !o.Quality.Disabled {
		sp := ob.StartSpan(StageQualityGate)
		rep, repaired, err := qualityGate(acq, o)
		sp.End()
		if err != nil {
			return out, fmt.Errorf("core: quality gate: %w", err)
		}
		out.repairs = rep
		raw = repaired
		if n := len(rep.Repairs); n > 0 {
			ob.Info("quality gate", "checked", rep.Checked, "repaired", n)
		}
	}
	slices := make([]*img.Gray, len(raw))
	err := ob.ForEachCtx(ctx, StageDenoise, o.Workers, len(raw), func(ctx context.Context, i int) error {
		g, err := denoiseSlice(ctx, raw[i], o)
		if err != nil {
			return fmt.Errorf("core: denoise slice %d: %w", i, err)
		}
		flatField(g)
		slices[i] = g
		return nil
	})
	if err != nil {
		return out, err
	}
	if o.Register.MaxShift > 0 && len(slices) > 1 {
		sp := ob.StartSpan(StageAlign)
		aligned, sres, err := register.AlignStackCtx(ctx, slices, regOptions(o))
		sp.End()
		if err != nil {
			return out, fmt.Errorf("core: align: %w", err)
		}
		out.slices, out.didAlign = aligned, true
		out.alignFallbacks = sres.Fallbacks()
		if out.alignFallbacks > 0 {
			ob.Info("alignment degraded", "fallbacks", out.alignFallbacks)
		}
		return out, nil
	}
	out.slices = slices
	return out, nil
}

// PlanarViews denoises and aligns an acquisition, then returns the
// reconstructed planar view image of every fabrication layer by name —
// the images of Fig. 7d. It honours the same Options.Denoiser selection
// and alignment guard as Reconstruct.
func PlanarViews(acq *sem.Acquisition, o Options) (map[string]*img.Gray, error) {
	return PlanarViewsCtx(context.Background(), acq, o)
}

// PlanarViewsCtx is PlanarViews with cooperative cancellation and, when
// Options.Ckpt and Options.CkptUnit are both set, checkpointing of the
// finished view set under the "views" stage (the aligned-stack
// checkpoint written by a prior Run of the same unit is also honoured,
// skipping preprocessing entirely).
func PlanarViewsCtx(ctx context.Context, acq *sem.Acquisition, o Options) (map[string]*img.Gray, error) {
	ck, err := newCkptRef(o.CkptUnit, o)
	if err != nil {
		return nil, err
	}
	var va viewsArtifact
	if ck.load(CkptViews, &va) {
		return va.Views, nil
	}
	var slices []*img.Gray
	var la alignedArtifact
	if ck.load(CkptAligned, &la) {
		slices = la.Slices
	} else {
		pre, err := preprocessCtx(ctx, acq, o)
		if err != nil {
			return nil, err
		}
		slices = pre.slices
	}
	vol, err := volume.FromStack(slices)
	if err != nil {
		return nil, err
	}
	layers := bandedLayers()
	views := make([]*img.Gray, len(layers))
	err = o.Obs.ForEachCtx(ctx, StageReslice, o.Workers, len(layers), func(_ context.Context, i int) error {
		band, _ := chipgen.Band(layers[i])
		view, err := vol.PlanarAverage(band.Y0+1, band.Y1-1)
		if err != nil {
			return err
		}
		views[i] = view
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*img.Gray, len(layers))
	for i, layer := range layers {
		out[layer.String()] = views[i]
	}
	ck.save(CkptViews, viewsArtifact{Views: out})
	return out, nil
}

// bandedLayers returns the fabrication layers that have a depth band in
// the voxel model, in layout order.
func bandedLayers() []layout.Layer {
	var out []layout.Layer
	for _, layer := range layout.Layers() {
		if _, ok := chipgen.Band(layer); ok {
			out = append(out, layer)
		}
	}
	return out
}

// flatField removes the per-slice charging offset by anchoring each
// slice's background level (10th intensity percentile) at zero, so that
// a global threshold on the resliced planar views treats every slice row
// consistently. The percentile comes from a strided sample of ~1024
// pixels, never fewer than min(len(Pix), 64) so small slices still get a
// meaningful background estimate.
func flatField(g *img.Gray) {
	n := len(g.Pix)
	if n == 0 {
		return
	}
	minSamples := 64
	if n < minSamples {
		minSamples = n
	}
	step := n/1024 + 1
	if maxStep := n / minSamples; step > maxStep {
		step = maxStep
	}
	sample := make([]float64, 0, (n+step-1)/step)
	for i := 0; i < n; i += step {
		sample = append(sample, g.Pix[i])
	}
	sort.Float64s(sample)
	p10 := sample[len(sample)/10]
	for i := range g.Pix {
		g.Pix[i] -= p10
	}
}

// PlanFromVolume reslices the reconstructed volume into one planar view
// per fabrication layer, segments each view, and converts the recovered
// rectangles to nanometer coordinates. sliceStep relates volume Z rows to
// voxel Z positions. The two phases (reslice, then segment) each fan out
// over the layers under their own stage span; phase order and the
// per-layer index addressing keep the plan byte-identical to a
// sequential build for any worker count.
func PlanFromVolume(vol *volume.Volume, window geom.Rect, o Options) (*netex.Plan, error) {
	return PlanFromVolumeCtx(context.Background(), vol, window, o)
}

// PlanFromVolumeCtx is PlanFromVolume with cooperative cancellation
// between layers in both fan-outs.
func PlanFromVolumeCtx(ctx context.Context, vol *volume.Volume, window geom.Rect, o Options) (*netex.Plan, error) {
	layers := bandedLayers()
	views := make([]*img.Gray, len(layers))
	err := o.Obs.ForEachCtx(ctx, StageReslice, o.Workers, len(layers), func(_ context.Context, i int) error {
		view, err := resliceLayer(vol, layers[i])
		if err != nil {
			return err
		}
		views[i] = view
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Each layer's segmentation is independent; the rectangles are
	// collected per layer index and assembled into the plan in layout
	// order afterwards.
	perLayer := make([][]geom.Rect, len(layers))
	err = o.Obs.ForEachCtx(ctx, StageSegment, o.Workers, len(layers), func(_ context.Context, i int) error {
		perLayer[i] = segmentLayer(views[i], window, o)
		return nil
	})
	if err != nil {
		return nil, err
	}
	plan := netex.NewPlan()
	for i, layer := range layers {
		for _, r := range perLayer[i] {
			plan.Add(layer, r)
		}
	}
	return plan, nil
}

// resliceLayer averages one fabrication layer's depth band into a planar
// view and removes its residual per-pixel noise: the cross-section
// denoising ran per slice, so the planar view still needs an
// edge-preserving median before thresholding.
func resliceLayer(vol *volume.Volume, layer layout.Layer) (*img.Gray, error) {
	band, _ := chipgen.Band(layer)
	// Average over the band interior: residual slice misalignment
	// only bleeds into the band's edge rows.
	y0, y1 := band.Y0, band.Y1
	if y1-y0 > 2 {
		y0, y1 = y0+1, y1-1
	}
	raw, err := vol.PlanarAverage(y0, y1)
	if err != nil {
		return nil, fmt.Errorf("core: planar view of %s: %w", layer, err)
	}
	return img.MedianFilter(raw, 1), nil
}

// segmentLayer thresholds one resliced planar view and returns the
// recovered rectangles in nanometer coordinates. It returns no
// rectangles for a band with no structure.
func segmentLayer(view *img.Gray, window geom.Rect, o Options) []geom.Rect {
	zScale := o.VoxelNM * int64(o.SEM.SliceStep)
	// Otsu splits the background on sparse layers (contacts and
	// vias cover ~1% of the area), so the mid-range threshold
	// competes with it and the better class separation wins. A band
	// with no structure (e.g. capacitors in an SA-only region)
	// separates poorly under both and is skipped.
	st := view.Statistics()
	thr, sep := 0.0, -1.0
	for _, cand := range []float64{segmentOtsu(view), (st.Min + st.Max) / 2} {
		if fg, bg, ok := classMeans(view, cand); ok && fg-bg > sep {
			thr, sep = cand, fg-bg
		}
	}
	if sep < 0.15 {
		return nil
	}
	mask := segmentMask(view, thr)
	var out []geom.Rect
	for _, r := range segmentDecompose(mask, view.W, o.MinComponentPx) {
		out = append(out, geom.R(
			window.Min.X+int64(r[0])*o.VoxelNM,
			window.Min.Y+int64(r[1])*zScale,
			window.Min.X+int64(r[2])*o.VoxelNM,
			window.Min.Y+int64(r[3])*zScale,
		))
	}
	return out
}
