// Package volume provides 3-D scalar volumes assembled from FIB/SEM slice
// stacks and the reslicing operations the HiFi-DRAM pipeline needs: the
// microscope produces cross-section images (X = lateral, Y = depth into
// the IC stack) at successive Z positions (FIB milling direction), and
// the reverse-engineering stage consumes planar (top-down) views, i.e.
// slices at constant depth Y.
//
// Axis convention throughout:
//
//	X — lateral direction within a cross-section image (image x)
//	Y — vertical direction within a cross-section image (image y),
//	    which is depth into the chip: metal layers at small Y,
//	    transistors at large Y (Fig. 4 of the paper)
//	Z — the FIB slicing direction (one slice per image)
package volume

import (
	"fmt"
	"math"

	"repro/internal/img"
)

// Volume is a dense NX×NY×NZ float64 scalar field.
type Volume struct {
	NX, NY, NZ int
	// Data is indexed [z][y*NX+x] conceptually; stored flat as
	// z*NX*NY + y*NX + x.
	Data []float64
}

// New returns a zeroed volume. It panics on non-positive dimensions.
func New(nx, ny, nz int) *Volume {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("volume: invalid dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Volume{NX: nx, NY: ny, NZ: nz, Data: make([]float64, nx*ny*nz)}
}

// At returns the voxel at (x, y, z).
func (v *Volume) At(x, y, z int) float64 {
	return v.Data[(z*v.NY+y)*v.NX+x]
}

// Set writes the voxel at (x, y, z).
func (v *Volume) Set(x, y, z int, val float64) {
	v.Data[(z*v.NY+y)*v.NX+x] = val
}

// AtClamp returns the voxel at (x, y, z) with coordinates clamped to the
// volume bounds.
func (v *Volume) AtClamp(x, y, z int) float64 {
	x = clamp(x, v.NX)
	y = clamp(y, v.NY)
	z = clamp(z, v.NZ)
	return v.At(x, y, z)
}

func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// SliceSizeError reports a slice whose dimensions differ from the first
// slice of the stack handed to FromStack. It is returned (wrapped in the
// pipeline's own context) before any volume memory is allocated, so a
// dimension bug surfaces as a typed error instead of a mid-pipeline
// panic.
type SliceSizeError struct {
	// Index is the offending slice's position in the stack.
	Index int
	// W, H are its dimensions; WantW, WantH those of slice 0.
	W, H, WantW, WantH int
}

func (e *SliceSizeError) Error() string {
	return fmt.Sprintf("volume: slice %d is %dx%d, want %dx%d",
		e.Index, e.W, e.H, e.WantW, e.WantH)
}

// FromStack assembles a volume from a stack of equally-sized
// cross-section images: slice k becomes the plane z = k. Every slice is
// validated before construction: a nil or malformed slice is rejected
// with an error and a dimension mismatch with a *SliceSizeError, so the
// constructor never reaches New's invalid-dimension panic.
func FromStack(slices []*img.Gray) (*Volume, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("volume: empty stack")
	}
	for i, s := range slices {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("volume: slice %d: %w", i, err)
		}
	}
	w, h := slices[0].W, slices[0].H
	for i, s := range slices {
		if s.W != w || s.H != h {
			return nil, &SliceSizeError{Index: i, W: s.W, H: s.H, WantW: w, WantH: h}
		}
	}
	v := New(w, h, len(slices))
	for z, s := range slices {
		copy(v.Data[z*w*h:(z+1)*w*h], s.Pix)
	}
	return v, nil
}

// SliceZ extracts the cross-section image at the given z (a copy).
func (v *Volume) SliceZ(z int) (*img.Gray, error) {
	if z < 0 || z >= v.NZ {
		return nil, fmt.Errorf("volume: z=%d out of [0,%d)", z, v.NZ)
	}
	g := img.New(v.NX, v.NY)
	copy(g.Pix, v.Data[z*v.NX*v.NY:(z+1)*v.NX*v.NY])
	return g, nil
}

// SliceY extracts the planar (top-down) view at constant depth y: the
// result has width NX and height NZ, with image row z sampling slice z.
// This is the point-of-view change from cross section to planar that
// Section IV-C of the paper performs.
func (v *Volume) SliceY(y int) (*img.Gray, error) {
	if y < 0 || y >= v.NY {
		return nil, fmt.Errorf("volume: y=%d out of [0,%d)", y, v.NY)
	}
	g := img.New(v.NX, v.NZ)
	for z := 0; z < v.NZ; z++ {
		for x := 0; x < v.NX; x++ {
			g.Set(x, z, v.At(x, y, z))
		}
	}
	return g, nil
}

// SliceX extracts the orthogonal cross-section at constant x: the result
// has width NZ and height NY.
func (v *Volume) SliceX(x int) (*img.Gray, error) {
	if x < 0 || x >= v.NX {
		return nil, fmt.Errorf("volume: x=%d out of [0,%d)", x, v.NX)
	}
	g := img.New(v.NZ, v.NY)
	for y := 0; y < v.NY; y++ {
		for z := 0; z < v.NZ; z++ {
			g.Set(z, y, v.At(x, y, z))
		}
	}
	return g, nil
}

// PlanarAverage returns the planar view averaged over the depth band
// [y0, y1), which is how a metal layer of finite thickness is rendered as
// a single planar image.
func (v *Volume) PlanarAverage(y0, y1 int) (*img.Gray, error) {
	if y0 < 0 || y1 > v.NY || y0 >= y1 {
		return nil, fmt.Errorf("volume: depth band [%d,%d) out of [0,%d)", y0, y1, v.NY)
	}
	g := img.New(v.NX, v.NZ)
	inv := 1.0 / float64(y1-y0)
	for z := 0; z < v.NZ; z++ {
		for x := 0; x < v.NX; x++ {
			var s float64
			for y := y0; y < y1; y++ {
				s += v.At(x, y, z)
			}
			g.Set(x, z, s*inv)
		}
	}
	return g, nil
}

// Crop returns the sub-volume [x0,x1)×[y0,y1)×[z0,z1).
func (v *Volume) Crop(x0, y0, z0, x1, y1, z1 int) (*Volume, error) {
	if x0 < 0 || y0 < 0 || z0 < 0 || x1 > v.NX || y1 > v.NY || z1 > v.NZ ||
		x0 >= x1 || y0 >= y1 || z0 >= z1 {
		return nil, fmt.Errorf("volume: invalid crop [%d,%d)x[%d,%d)x[%d,%d) of %dx%dx%d",
			x0, x1, y0, y1, z0, z1, v.NX, v.NY, v.NZ)
	}
	out := New(x1-x0, y1-y0, z1-z0)
	for z := z0; z < z1; z++ {
		for y := y0; y < y1; y++ {
			srcOff := (z*v.NY+y)*v.NX + x0
			dstOff := ((z-z0)*out.NY + (y - y0)) * out.NX
			copy(out.Data[dstOff:dstOff+out.NX], v.Data[srcOff:srcOff+(x1-x0)])
		}
	}
	return out, nil
}

// RotateZ returns the volume rotated by the given angle (radians) about
// the Y axis (i.e. each planar view is rotated in the X-Z plane about the
// volume center), resampled trilinearly within each depth plane. This is
// the final misalignment-correction rotation of the post-processing step.
func (v *Volume) RotateZ(angle float64) *Volume {
	out := New(v.NX, v.NY, v.NZ)
	cx := float64(v.NX-1) / 2
	cz := float64(v.NZ-1) / 2
	sin, cos := math.Sin(angle), math.Cos(angle)
	for z := 0; z < v.NZ; z++ {
		for x := 0; x < v.NX; x++ {
			// Inverse mapping: rotate the output coordinate back.
			fx := float64(x) - cx
			fz := float64(z) - cz
			sx := cos*fx + sin*fz + cx
			sz := -sin*fx + cos*fz + cz
			for y := 0; y < v.NY; y++ {
				out.Set(x, y, z, v.bilinearXZ(sx, y, sz))
			}
		}
	}
	return out
}

// bilinearXZ samples the volume at real (x, z) within integer depth y.
func (v *Volume) bilinearXZ(x float64, y int, z float64) float64 {
	x0 := int(math.Floor(x))
	z0 := int(math.Floor(z))
	fx := x - float64(x0)
	fz := z - float64(z0)
	v00 := v.AtClamp(x0, y, z0)
	v10 := v.AtClamp(x0+1, y, z0)
	v01 := v.AtClamp(x0, y, z0+1)
	v11 := v.AtClamp(x0+1, y, z0+1)
	return v00*(1-fx)*(1-fz) + v10*fx*(1-fz) + v01*(1-fx)*fz + v11*fx*fz
}

// Stats summarizes the voxel intensity distribution.
type Stats struct {
	Min, Max, Mean float64
}

// Statistics computes min/max/mean over all voxels.
func (v *Volume) Statistics() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, val := range v.Data {
		if val < s.Min {
			s.Min = val
		}
		if val > s.Max {
			s.Max = val
		}
		sum += val
	}
	s.Mean = sum / float64(len(v.Data))
	return s
}
