package volume

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/img"
)

func seqVolume(nx, ny, nz int) *Volume {
	v := New(nx, ny, nz)
	for i := range v.Data {
		v.Data[i] = float64(i)
	}
	return v
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for zero dimension")
		}
	}()
	New(3, 0, 3)
}

func TestAtSetRoundTrip(t *testing.T) {
	v := New(3, 4, 5)
	v.Set(2, 3, 4, 7.5)
	if got := v.At(2, 3, 4); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	if got := v.AtClamp(99, -1, 4); got != v.At(2, 0, 4) {
		t.Errorf("AtClamp = %v", got)
	}
}

func TestFromStackAndSliceZ(t *testing.T) {
	a := img.New(4, 3)
	a.Fill(1)
	b := img.New(4, 3)
	b.Fill(2)
	v, err := FromStack([]*img.Gray{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if v.NX != 4 || v.NY != 3 || v.NZ != 2 {
		t.Fatalf("dims %dx%dx%d", v.NX, v.NY, v.NZ)
	}
	s0, err := v.SliceZ(0)
	if err != nil {
		t.Fatal(err)
	}
	if s0.At(1, 1) != 1 {
		t.Errorf("slice 0 content wrong")
	}
	s1, _ := v.SliceZ(1)
	if s1.At(0, 0) != 2 {
		t.Errorf("slice 1 content wrong")
	}
	if _, err := v.SliceZ(2); err == nil {
		t.Errorf("expected out-of-range error")
	}
}

func TestFromStackErrors(t *testing.T) {
	if _, err := FromStack(nil); err == nil {
		t.Errorf("expected empty stack error")
	}
	err := FromStack2Err(img.New(2, 2), img.New(3, 2))
	var sse *SliceSizeError
	if !errors.As(err, &sse) {
		t.Fatalf("mismatched slice: err %T = %v, want *SliceSizeError", err, err)
	}
	if *sse != (SliceSizeError{Index: 1, W: 3, H: 2, WantW: 2, WantH: 2}) {
		t.Errorf("SliceSizeError = %+v", *sse)
	}
}

// FromStack2Err runs FromStack on two slices and returns only the error.
func FromStack2Err(a, b *img.Gray) error {
	_, err := FromStack([]*img.Gray{a, b})
	return err
}

// A stack containing a nil or structurally invalid slice must be
// rejected with an error before volume construction — never reach the
// New panic or an index fault mid-pipeline.
func TestFromStackRejectsInvalidSlices(t *testing.T) {
	good := img.New(2, 2)
	cases := []struct {
		name string
		bad  *img.Gray
	}{
		{"nil", nil},
		{"zero-value", &img.Gray{}},
		{"non-positive-dims", &img.Gray{W: -1, H: 2}},
		{"truncated-pix", &img.Gray{W: 2, H: 2, Pix: make([]float64, 3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("FromStack panicked: %v", r)
				}
			}()
			if err := FromStack2Err(good, tc.bad); err == nil {
				t.Errorf("expected a validation error")
			}
			// An invalid first slice must not panic either.
			if err := FromStack2Err(tc.bad, good); err == nil {
				t.Errorf("expected a validation error for slice 0")
			}
		})
	}
}

func TestSliceYIsPlanarView(t *testing.T) {
	// Volume where value encodes coordinates: v = 100z + 10y + x.
	v := New(3, 3, 3)
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				v.Set(x, y, z, float64(100*z+10*y+x))
			}
		}
	}
	p, err := v.SliceY(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.W != 3 || p.H != 3 {
		t.Fatalf("planar dims %dx%d", p.W, p.H)
	}
	// At planar (x=2, row z=1): expect 100*1 + 10*1 + 2 = 112.
	if got := p.At(2, 1); got != 112 {
		t.Errorf("planar sample = %v, want 112", got)
	}
	if _, err := v.SliceY(3); err == nil {
		t.Errorf("expected out-of-range error")
	}
}

func TestSliceX(t *testing.T) {
	v := New(2, 3, 4)
	v.Set(1, 2, 3, 42)
	s, err := v.SliceX(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.W != 4 || s.H != 3 {
		t.Fatalf("dims %dx%d", s.W, s.H)
	}
	if s.At(3, 2) != 42 {
		t.Errorf("content wrong: %v", s.At(3, 2))
	}
	if _, err := v.SliceX(-1); err == nil {
		t.Errorf("expected out-of-range error")
	}
}

func TestPlanarAverage(t *testing.T) {
	v := New(2, 4, 2)
	for y := 0; y < 4; y++ {
		for z := 0; z < 2; z++ {
			for x := 0; x < 2; x++ {
				v.Set(x, y, z, float64(y))
			}
		}
	}
	p, err := v.PlanarAverage(1, 3) // depths 1 and 2 -> mean 1.5
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0, 0) != 1.5 {
		t.Errorf("average = %v, want 1.5", p.At(0, 0))
	}
	if _, err := v.PlanarAverage(3, 3); err == nil {
		t.Errorf("expected empty band error")
	}
	if _, err := v.PlanarAverage(0, 9); err == nil {
		t.Errorf("expected out-of-range error")
	}
}

func TestCrop(t *testing.T) {
	v := seqVolume(4, 4, 4)
	c, err := v.Crop(1, 1, 1, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NX != 2 || c.NY != 3 || c.NZ != 1 {
		t.Fatalf("crop dims %dx%dx%d", c.NX, c.NY, c.NZ)
	}
	if c.At(0, 0, 0) != v.At(1, 1, 1) {
		t.Errorf("crop origin wrong")
	}
	if c.At(1, 2, 0) != v.At(2, 3, 1) {
		t.Errorf("crop far corner wrong")
	}
	if _, err := v.Crop(0, 0, 0, 5, 4, 4); err == nil {
		t.Errorf("expected out-of-range error")
	}
}

func TestRotateZIdentity(t *testing.T) {
	v := seqVolume(5, 2, 5)
	r := v.RotateZ(0)
	for i := range v.Data {
		if math.Abs(r.Data[i]-v.Data[i]) > 1e-12 {
			t.Fatalf("identity rotation changed voxel %d", i)
		}
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	// A marked voxel off-center should move to the rotated position.
	v := New(5, 1, 5)
	v.Set(4, 0, 2, 1) // at (x,z) = (4,2): offset (+2, 0) from center (2,2)
	r := v.RotateZ(math.Pi / 2)
	// Forward rotation by +90° maps offset (dx,dz) to (-dz,dx):
	// (+2,0) -> (0,+2), i.e. (x,z) = (2,4).
	if got := r.At(2, 0, 4); math.Abs(got-1) > 1e-9 {
		t.Errorf("rotated voxel = %v at expected position", got)
	}
	if got := r.At(4, 0, 2); got > 1e-9 {
		t.Errorf("original position should be vacated, got %v", got)
	}
}

func TestStatistics(t *testing.T) {
	v := New(2, 1, 2)
	copy(v.Data, []float64{1, 2, 3, 6})
	s := v.Statistics()
	if s.Min != 1 || s.Max != 6 || s.Mean != 3 {
		t.Errorf("stats = %+v", s)
	}
}

// Property: FromStack then SliceZ round-trips every slice.
func TestStackRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%4) + 2
		if n < 2 {
			n = 2
		}
		var slices []*img.Gray
		for k := 0; k < n; k++ {
			g := img.New(5, 4)
			for i := range g.Pix {
				g.Pix[i] = float64(k*100 + i)
			}
			slices = append(slices, g)
		}
		v, err := FromStack(slices)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			s, err := v.SliceZ(k)
			if err != nil {
				return false
			}
			for i := range s.Pix {
				if s.Pix[i] != slices[k].Pix[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: SliceY of FromStack equals reading row y of each slice.
func TestPlanarConsistencyProperty(t *testing.T) {
	f := func(seed uint8) bool {
		slices := []*img.Gray{img.New(6, 5), img.New(6, 5), img.New(6, 5)}
		for k, s := range slices {
			for i := range s.Pix {
				s.Pix[i] = float64((int(seed)+k*31+i*7)%97) / 97
			}
		}
		v, err := FromStack(slices)
		if err != nil {
			return false
		}
		y := int(seed) % 5
		p, err := v.SliceY(y)
		if err != nil {
			return false
		}
		for z := 0; z < 3; z++ {
			for x := 0; x < 6; x++ {
				if p.At(x, z) != slices[z].At(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSliceY(b *testing.B) {
	v := seqVolume(128, 64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := v.SliceY(32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotateZ(b *testing.B) {
	v := seqVolume(64, 16, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.RotateZ(0.05)
	}
}
