package gds

import (
	"fmt"

	"repro/internal/layout"
)

// FromCell converts a layout cell into a GDSII structure, mapping each
// shape to a rectangular BOUNDARY on the layer's conventional GDS number.
// Coordinates must fit in int32 (database units are nanometers, so a die
// up to ~2m wide fits; errors are impossible for real chips but checked).
func FromCell(c *layout.Cell) (Structure, error) {
	s := Structure{Name: c.Name}
	for _, sh := range c.Shapes {
		r := sh.Rect
		if r.Empty() {
			continue
		}
		for _, v := range []int64{r.Min.X, r.Min.Y, r.Max.X, r.Max.Y} {
			if v > 1<<31-1 || v < -(1<<31) {
				return Structure{}, fmt.Errorf("gds: coordinate %d overflows int32", v)
			}
		}
		s.Boundaries = append(s.Boundaries, Boundary{
			Layer: sh.Layer.GDSLayerNumber(),
			XY: [][2]int32{
				{int32(r.Min.X), int32(r.Min.Y)},
				{int32(r.Max.X), int32(r.Min.Y)},
				{int32(r.Max.X), int32(r.Max.Y)},
				{int32(r.Min.X), int32(r.Max.Y)},
			},
		})
	}
	return s, nil
}

// FromLibrary converts a layout library (cells only; instances are
// flattened into a single top structure) into a GDSII library.
func FromLibrary(lib *layout.Library) (*Library, error) {
	out := NewLibrary(lib.Top)
	for _, c := range lib.Cells {
		s, err := FromCell(c)
		if err != nil {
			return nil, fmt.Errorf("gds: cell %q: %w", c.Name, err)
		}
		out.Structs = append(out.Structs, s)
	}
	if len(lib.Instances) > 0 {
		top := &layout.Cell{Name: lib.Top + "_flat"}
		for _, sh := range lib.FlattenAll() {
			top.Add(sh)
		}
		s, err := FromCell(top)
		if err != nil {
			return nil, err
		}
		out.Structs = append(out.Structs, s)
	}
	return out, nil
}
