// Package gds implements a reader and writer for the GDSII stream format,
// the industry-standard layout interchange format in which HiFi-DRAM
// publishes its reverse-engineered sense-amplifier layouts.
//
// The subset implemented covers everything a flat rectilinear layout
// export needs: HEADER/BGNLIB/LIBNAME/UNITS, structures (BGNSTR, STRNAME,
// ENDSTR), BOUNDARY elements with LAYER/DATATYPE/XY, and ENDLIB. Records
// are big-endian; coordinates are 4-byte signed integers in database
// units (we use 1 dbu = 1 nm).
package gds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Record types used by this implementation.
const (
	recHEADER   = 0x0002
	recBGNLIB   = 0x0102
	recLIBNAME  = 0x0206
	recUNITS    = 0x0305
	recENDLIB   = 0x0400
	recBGNSTR   = 0x0502
	recSTRNAME  = 0x0606
	recENDSTR   = 0x0700
	recBOUNDARY = 0x0800
	recLAYER    = 0x0D02
	recDATATYPE = 0x0E02
	recXY       = 0x1003
	recENDEL    = 0x1100
)

// Boundary is a closed polygon on a layer. Points are in database units
// and must not repeat the first point; the writer closes the ring.
type Boundary struct {
	Layer    int
	Datatype int
	XY       [][2]int32
}

// Structure is a named cell containing boundary elements.
type Structure struct {
	Name       string
	Boundaries []Boundary
}

// Library is a GDSII library: a name, its unit scale and its structures.
type Library struct {
	Name string
	// UserUnit is the size of a database unit in user units (GDSII
	// UNITS first value); MeterUnit is the size of a database unit in
	// meters. Our exports use 1 dbu = 1 nm: UserUnit 1e-3 (um per dbu
	// would be 1e-3), MeterUnit 1e-9.
	UserUnit  float64
	MeterUnit float64
	Structs   []Structure
}

// NewLibrary returns a library configured for 1 nm database units.
func NewLibrary(name string) *Library {
	return &Library{Name: name, UserUnit: 1e-3, MeterUnit: 1e-9}
}

// Write encodes the library as a GDSII stream.
func (lib *Library) Write(w io.Writer) error {
	e := &encoder{w: w}
	e.record(recHEADER, u16(600))
	e.record(recBGNLIB, timestampPayload())
	e.record(recLIBNAME, asciiPayload(lib.Name))
	e.record(recUNITS, append(real8(lib.UserUnit), real8(lib.MeterUnit)...))
	for _, s := range lib.Structs {
		e.record(recBGNSTR, timestampPayload())
		e.record(recSTRNAME, asciiPayload(s.Name))
		for _, b := range s.Boundaries {
			e.record(recBOUNDARY, nil)
			e.record(recLAYER, u16(uint16(b.Layer)))
			e.record(recDATATYPE, u16(uint16(b.Datatype)))
			e.record(recXY, xyPayload(b.XY))
			e.record(recENDEL, nil)
		}
		e.record(recENDSTR, nil)
	}
	e.record(recENDLIB, nil)
	return e.err
}

type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) record(rectype uint16, payload []byte) {
	if e.err != nil {
		return
	}
	length := 4 + len(payload)
	if length > math.MaxUint16 {
		e.err = fmt.Errorf("gds: record 0x%04x payload too large (%d bytes)", rectype, len(payload))
		return
	}
	hdr := []byte{byte(length >> 8), byte(length), byte(rectype >> 8), byte(rectype)}
	if _, err := e.w.Write(hdr); err != nil {
		e.err = err
		return
	}
	if len(payload) > 0 {
		if _, err := e.w.Write(payload); err != nil {
			e.err = err
		}
	}
}

func u16(v uint16) []byte { return []byte{byte(v >> 8), byte(v)} }

// timestampPayload encodes the 12 int16 modification/access timestamps.
// A fixed epoch keeps outputs byte-for-byte reproducible.
func timestampPayload() []byte {
	out := make([]byte, 24)
	// year=2024, month=1, day=1, rest zero, duplicated.
	binary.BigEndian.PutUint16(out[0:], 2024)
	binary.BigEndian.PutUint16(out[2:], 1)
	binary.BigEndian.PutUint16(out[4:], 1)
	binary.BigEndian.PutUint16(out[12:], 2024)
	binary.BigEndian.PutUint16(out[14:], 1)
	binary.BigEndian.PutUint16(out[16:], 1)
	return out
}

// asciiPayload encodes a string, padding with NUL to even length.
func asciiPayload(s string) []byte {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0)
	}
	return b
}

func xyPayload(xy [][2]int32) []byte {
	// Closed ring: repeat the first point.
	pts := make([][2]int32, len(xy), len(xy)+1)
	copy(pts, xy)
	if len(xy) > 0 {
		pts = append(pts, xy[0])
	}
	out := make([]byte, 8*len(pts))
	for i, p := range pts {
		binary.BigEndian.PutUint32(out[8*i:], uint32(p[0]))
		binary.BigEndian.PutUint32(out[8*i+4:], uint32(p[1]))
	}
	return out
}

// real8 encodes a float64 as GDSII 8-byte excess-64 base-16 real.
func real8(v float64) []byte {
	out := make([]byte, 8)
	if v == 0 {
		return out
	}
	neg := v < 0
	if neg {
		v = -v
	}
	// Normalize mantissa into [1/16, 1) with exponent base 16.
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	mant := uint64(v * math.Pow(2, 56)) // 7 bytes of mantissa
	b0 := byte(exp + 64)
	if neg {
		b0 |= 0x80
	}
	out[0] = b0
	for i := 6; i >= 0; i-- {
		out[1+6-i] = byte(mant >> (8 * uint(i)))
	}
	return out
}

// parseReal8 decodes a GDSII excess-64 real.
func parseReal8(b []byte) float64 {
	if len(b) != 8 {
		return 0
	}
	neg := b[0]&0x80 != 0
	exp := int(b[0]&0x7F) - 64
	var mant uint64
	for _, x := range b[1:] {
		mant = mant<<8 | uint64(x)
	}
	v := float64(mant) / math.Pow(2, 56) * math.Pow(16, float64(exp))
	if neg {
		v = -v
	}
	return v
}

// Read decodes a GDSII stream produced by Write (or any flat library
// using the supported record subset). Unknown records inside structures
// and elements are skipped.
func Read(r io.Reader) (*Library, error) {
	lib := &Library{}
	var cur *Structure
	var curBoundary *Boundary
	sawHeader := false
	for {
		rectype, payload, err := readRecord(r)
		if err == io.EOF {
			return nil, fmt.Errorf("gds: missing ENDLIB")
		}
		if err != nil {
			return nil, err
		}
		switch rectype {
		case recHEADER:
			sawHeader = true
		case recLIBNAME:
			lib.Name = trimNul(payload)
		case recUNITS:
			if len(payload) != 16 {
				return nil, fmt.Errorf("gds: UNITS payload %d bytes, want 16", len(payload))
			}
			lib.UserUnit = parseReal8(payload[:8])
			lib.MeterUnit = parseReal8(payload[8:])
		case recBGNSTR:
			if cur != nil {
				return nil, fmt.Errorf("gds: nested BGNSTR")
			}
			cur = &Structure{}
		case recSTRNAME:
			if cur == nil {
				return nil, fmt.Errorf("gds: STRNAME outside structure")
			}
			cur.Name = trimNul(payload)
		case recENDSTR:
			if cur == nil {
				return nil, fmt.Errorf("gds: ENDSTR outside structure")
			}
			lib.Structs = append(lib.Structs, *cur)
			cur = nil
		case recBOUNDARY:
			if cur == nil {
				return nil, fmt.Errorf("gds: BOUNDARY outside structure")
			}
			curBoundary = &Boundary{}
		case recLAYER:
			if curBoundary != nil && len(payload) >= 2 {
				curBoundary.Layer = int(binary.BigEndian.Uint16(payload))
			}
		case recDATATYPE:
			if curBoundary != nil && len(payload) >= 2 {
				curBoundary.Datatype = int(binary.BigEndian.Uint16(payload))
			}
		case recXY:
			if curBoundary != nil {
				n := len(payload) / 8
				for i := 0; i < n; i++ {
					x := int32(binary.BigEndian.Uint32(payload[8*i:]))
					y := int32(binary.BigEndian.Uint32(payload[8*i+4:]))
					curBoundary.XY = append(curBoundary.XY, [2]int32{x, y})
				}
				// Drop the closing point the writer added.
				if len(curBoundary.XY) > 1 &&
					curBoundary.XY[0] == curBoundary.XY[len(curBoundary.XY)-1] {
					curBoundary.XY = curBoundary.XY[:len(curBoundary.XY)-1]
				}
			}
		case recENDEL:
			if curBoundary != nil && cur != nil {
				cur.Boundaries = append(cur.Boundaries, *curBoundary)
			}
			curBoundary = nil
		case recENDLIB:
			if !sawHeader {
				return nil, fmt.Errorf("gds: stream has no HEADER")
			}
			if cur != nil {
				return nil, fmt.Errorf("gds: ENDLIB inside structure %q", cur.Name)
			}
			return lib, nil
		default:
			// Skip unhandled records (BGNLIB timestamps, PATH, etc.).
		}
	}
}

func readRecord(r io.Reader) (uint16, []byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("gds: truncated record header")
		}
		return 0, nil, err
	}
	length := int(binary.BigEndian.Uint16(hdr))
	rectype := binary.BigEndian.Uint16(hdr[2:])
	if length < 4 {
		return 0, nil, fmt.Errorf("gds: record length %d < 4", length)
	}
	payload := make([]byte, length-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("gds: truncated record 0x%04x: %w", rectype, err)
	}
	return rectype, payload, nil
}

func trimNul(b []byte) string {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return string(b)
}
