package gds

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/layout"
)

func sampleLibrary() *Library {
	lib := NewLibrary("HIFI")
	lib.Structs = []Structure{
		{
			Name: "SA1",
			Boundaries: []Boundary{
				{Layer: 13, Datatype: 0, XY: [][2]int32{{0, 0}, {100, 0}, {100, 50}, {0, 50}}},
				{Layer: 11, Datatype: 2, XY: [][2]int32{{-5, -5}, {5, -5}, {5, 5}, {-5, 5}}},
			},
		},
		{Name: "EMPTY"},
	}
	return lib
}

func TestWriteReadRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "HIFI" {
		t.Errorf("library name %q", got.Name)
	}
	if len(got.Structs) != 2 {
		t.Fatalf("structures = %d", len(got.Structs))
	}
	s := got.Structs[0]
	if s.Name != "SA1" || len(s.Boundaries) != 2 {
		t.Fatalf("structure = %+v", s)
	}
	b := s.Boundaries[0]
	if b.Layer != 13 || len(b.XY) != 4 {
		t.Errorf("boundary = %+v", b)
	}
	if b.XY[2] != [2]int32{100, 50} {
		t.Errorf("vertex = %v", b.XY[2])
	}
	if s.Boundaries[1].Datatype != 2 {
		t.Errorf("datatype not preserved: %d", s.Boundaries[1].Datatype)
	}
	if got.Structs[1].Name != "EMPTY" || len(got.Structs[1].Boundaries) != 0 {
		t.Errorf("empty structure mishandled: %+v", got.Structs[1])
	}
}

func TestUnitsRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.UserUnit-1e-3)/1e-3 > 1e-9 {
		t.Errorf("user unit = %v", got.UserUnit)
	}
	if math.Abs(got.MeterUnit-1e-9)/1e-9 > 1e-9 {
		t.Errorf("meter unit = %v", got.MeterUnit)
	}
}

func TestReal8RoundTripProperty(t *testing.T) {
	f := func(mant int32, scale uint8) bool {
		v := float64(mant) * math.Pow(10, float64(int(scale%19)-9))
		got := parseReal8(real8(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v) <= math.Abs(v)*1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReal8KnownValues(t *testing.T) {
	// 1.0 encodes as exponent 65 (16^1 * 1/16), mantissa 0x10000000000000.
	b := real8(1.0)
	if b[0] != 0x41 || b[1] != 0x10 {
		t.Errorf("real8(1.0) = % x", b)
	}
	if v := parseReal8(b); v != 1.0 {
		t.Errorf("parse = %v", v)
	}
	if v := parseReal8(real8(-2.5)); v != -2.5 {
		t.Errorf("negative round trip = %v", v)
	}
	if v := parseReal8(make([]byte, 8)); v != 0 {
		t.Errorf("zero = %v", v)
	}
	if v := parseReal8([]byte{1}); v != 0 {
		t.Errorf("short input should be 0, got %v", v)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": {0x00},
		"no endlib": func() []byte {
			var buf bytes.Buffer
			e := &encoder{w: &buf}
			e.record(recHEADER, u16(600))
			return buf.Bytes()
		}(),
		"strname outside structure": func() []byte {
			var buf bytes.Buffer
			e := &encoder{w: &buf}
			e.record(recHEADER, u16(600))
			e.record(recSTRNAME, asciiPayload("X"))
			e.record(recENDLIB, nil)
			return buf.Bytes()
		}(),
		"endlib inside structure": func() []byte {
			var buf bytes.Buffer
			e := &encoder{w: &buf}
			e.record(recHEADER, u16(600))
			e.record(recBGNSTR, timestampPayload())
			e.record(recSTRNAME, asciiPayload("X"))
			e.record(recENDLIB, nil)
			return buf.Bytes()
		}(),
		"no header": func() []byte {
			var buf bytes.Buffer
			e := &encoder{w: &buf}
			e.record(recENDLIB, nil)
			return buf.Bytes()
		}(),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestOddLengthNamePadding(t *testing.T) {
	lib := NewLibrary("ODD") // 3 chars -> padded
	lib.Structs = []Structure{{Name: "ABC"}}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "ODD" || got.Structs[0].Name != "ABC" {
		t.Errorf("padding not stripped: %q %q", got.Name, got.Structs[0].Name)
	}
}

func TestFromCell(t *testing.T) {
	c := &layout.Cell{Name: "sa"}
	c.AddRect(layout.LayerM1, geom.R(0, 0, 100, 30), "BL", "bitline")
	c.AddRect(layout.LayerGate, geom.R(10, 10, 20, 20), "", "")
	c.AddRect(layout.LayerM2, geom.Rect{}, "", "") // skipped
	s, err := FromCell(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Boundaries) != 2 {
		t.Fatalf("boundaries = %d", len(s.Boundaries))
	}
	if s.Boundaries[0].Layer != layout.LayerM1.GDSLayerNumber() {
		t.Errorf("layer = %d", s.Boundaries[0].Layer)
	}
	if len(s.Boundaries[0].XY) != 4 {
		t.Errorf("rect should have 4 vertices, got %d", len(s.Boundaries[0].XY))
	}
}

func TestFromCellOverflow(t *testing.T) {
	c := &layout.Cell{Name: "big"}
	c.AddRect(layout.LayerM1, geom.R(0, 0, 1<<33, 10), "", "")
	if _, err := FromCell(c); err == nil {
		t.Errorf("expected int32 overflow error")
	}
}

func TestFromLibraryFlattensInstances(t *testing.T) {
	ll := layout.NewLibrary("top")
	c := &layout.Cell{Name: "unit"}
	c.AddRect(layout.LayerM1, geom.R(0, 0, 10, 10), "", "")
	ll.AddCell(c)
	if err := ll.Place("unit", geom.Transform{Offset: geom.Pt(100, 0)}); err != nil {
		t.Fatal(err)
	}
	g, err := FromLibrary(ll)
	if err != nil {
		t.Fatal(err)
	}
	// One structure for the cell, one flat top.
	if len(g.Structs) != 2 {
		t.Fatalf("structs = %d", len(g.Structs))
	}
	var flat *Structure
	for i := range g.Structs {
		if g.Structs[i].Name == "top_flat" {
			flat = &g.Structs[i]
		}
	}
	if flat == nil {
		t.Fatal("missing flattened top structure")
	}
	if flat.Boundaries[0].XY[0] != [2]int32{100, 0} {
		t.Errorf("instance offset not applied: %v", flat.Boundaries[0].XY[0])
	}
}

func TestEndToEndLayoutGDSRoundTrip(t *testing.T) {
	c := &layout.Cell{Name: "region"}
	for i := int64(0); i < 8; i++ {
		c.AddRect(layout.LayerM1, geom.R(i*40, 0, i*40+20, 2000), "", "bitline")
	}
	s, err := FromCell(c)
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary("TEST")
	lib.Structs = []Structure{s}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Structs[0].Boundaries) != 8 {
		t.Errorf("bitlines = %d", len(back.Structs[0].Boundaries))
	}
}

func BenchmarkWrite(b *testing.B) {
	c := &layout.Cell{Name: "region"}
	for i := int64(0); i < 512; i++ {
		c.AddRect(layout.LayerM1, geom.R(i*40, 0, i*40+20, 2000), "", "")
	}
	s, err := FromCell(c)
	if err != nil {
		b.Fatal(err)
	}
	lib := NewLibrary("BENCH")
	lib.Structs = []Structure{s}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := lib.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
