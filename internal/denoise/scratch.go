package denoise

import (
	"context"
	"fmt"

	"repro/internal/img"
)

// Scratch holds the per-slice float64 work planes a TV denoising run
// needs (four for Chambolle, five for split-Bregman), so a streaming
// pipeline worker can denoise slice after slice without allocating
// fresh planes each time. A Scratch is reusable across slices of any
// size — planes grow on demand and are re-zeroed before every run, so
// results are bit-identical to the allocate-fresh path. The zero value
// is ready to use. A Scratch must not be shared between concurrent
// denoising runs; give each worker its own.
type Scratch struct {
	bufs [5][]float64
}

// plane returns work plane i with exactly n zeroed entries, reusing the
// previous backing array when it is large enough. Zeroing reproduces
// make's semantics, which the iteration math depends on (the dual and
// Bregman variables start at zero).
func (s *Scratch) plane(i, n int) []float64 {
	if cap(s.bufs[i]) < n {
		s.bufs[i] = make([]float64, n)
		return s.bufs[i]
	}
	b := s.bufs[i][:n]
	for j := range b {
		b[j] = 0
	}
	s.bufs[i] = b
	return b
}

// checkInto validates an Into-variant call: options first (matching the
// Ctx variants' error order), then the destination geometry.
func checkInto(dst, f *img.Gray, o Options) error {
	if err := o.validate(); err != nil {
		return err
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("denoise: input: %w", err)
	}
	if dst.W != f.W || dst.H != f.H || len(dst.Pix) != dst.W*dst.H {
		return fmt.Errorf("denoise: dst %dx%d does not match input %dx%d", dst.W, dst.H, f.W, f.H)
	}
	return nil
}

// ChambolleInto denoises f into dst (which must match f's dimensions)
// using caller-owned scratch planes instead of fresh allocations. The
// iteration math, operation order and early-stopping rule are exactly
// ChambolleCtx's, so dst ends up bit-identical to ChambolleCtx's
// result; dst's prior contents are fully overwritten. A nil Scratch
// allocates locally (equivalent to ChambolleCtx).
func ChambolleInto(ctx context.Context, dst, f *img.Gray, o Options, s *Scratch) error {
	if err := checkInto(dst, f, o); err != nil {
		return err
	}
	if s == nil {
		s = &Scratch{}
	}
	w, h := f.W, f.H
	n := w * h
	// Dual variables p = (px, py).
	px := s.plane(0, n)
	py := s.plane(1, n)
	div := s.plane(2, n)
	u := s.plane(3, n)
	const tau = 0.125
	invLambda := 1.0 / o.Lambda

	iters := 0
	for it := 0; it < o.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		iters++
		// u = f - div(p)/lambda
		divergence(px, py, w, h, div)
		var change float64
		for i := range u {
			nu := f.Pix[i] + div[i]*invLambda
			change += abs(nu - u[i])
			u[i] = nu
		}
		// Gradient ascent on the dual with reprojection onto |p|<=1.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				gx, gy := 0.0, 0.0
				if x < w-1 {
					gx = u[i+1] - u[i]
				}
				if y < h-1 {
					gy = u[i+w] - u[i]
				}
				npx := px[i] + tau*o.Lambda*gx
				npy := py[i] + tau*o.Lambda*gy
				norm := max1(hyp(npx, npy))
				px[i] = npx / norm
				py[i] = npy / norm
			}
		}
		if o.Tol > 0 && it > 0 && change/float64(n) < o.Tol {
			break
		}
	}
	divergence(px, py, w, h, div)
	for i := 0; i < n; i++ {
		dst.Pix[i] = f.Pix[i] + div[i]*invLambda
	}
	o.Obs.Count("denoise.slices", 1)
	o.Obs.Count("denoise.iterations", int64(iters))
	return nil
}

// SplitBregmanInto denoises f into dst with caller-owned scratch, the
// split-Bregman counterpart of ChambolleInto: bit-identical to
// SplitBregmanCtx, dst fully overwritten, nil Scratch allocates
// locally.
func SplitBregmanInto(ctx context.Context, dst, f *img.Gray, o Options, s *Scratch) error {
	if err := checkInto(dst, f, o); err != nil {
		return err
	}
	if s == nil {
		s = &Scratch{}
	}
	w, h := f.W, f.H
	n := w * h
	u := s.plane(0, n)
	copy(u, f.Pix)
	dx := s.plane(1, n)
	dy := s.plane(2, n)
	bx := s.plane(3, n)
	by := s.plane(4, n)
	// mu is the fidelity weight, gamma the splitting weight. gamma is
	// tied to mu per the usual heuristic gamma = 2*mu.
	mu := o.Lambda
	gamma := 2 * o.Lambda
	iters := 0

	for it := 0; it < o.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		iters++
		// Gauss-Seidel sweep for u; see SplitBregmanCtx for the border
		// handling and the operand-order contract.
		var change float64
		denom := mu + 4*gamma
		for y := 0; y < h; y++ {
			rowOff := y * w
			upOff := rowOff - w
			if y == 0 {
				upOff = rowOff
			}
			downOff := rowOff + w
			if y == h-1 {
				downOff = rowOff
			}
			for x := 0; x < w; x++ {
				i := rowOff + x
				xl := i - 1
				if x == 0 {
					xl = i
				}
				xr := i + 1
				if x == w-1 {
					xr = i
				}
				iu := upOff + x
				id := downOff + x
				sumN := u[xl] + u[xr] + u[iu] + u[id]
				dTerm := dx[xl] - dx[i] + dy[iu] - dy[i]
				bTerm := bx[i] - bx[xl] + by[i] - by[iu]
				nu := (mu*f.Pix[i] + gamma*(sumN+dTerm+bTerm)) / denom
				change += abs(nu - u[i])
				u[i] = nu
			}
		}
		// Shrinkage of d and Bregman update of b.
		thr := 1.0 / gamma
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				gx, gy := 0.0, 0.0
				if x < w-1 {
					gx = u[y*w+x+1] - u[i]
				}
				if y < h-1 {
					gy = u[(y+1)*w+x] - u[i]
				}
				dx[i] = shrink(gx+bx[i], thr)
				dy[i] = shrink(gy+by[i], thr)
				bx[i] += gx - dx[i]
				by[i] += gy - dy[i]
			}
		}
		if o.Tol > 0 && it > 0 && change/float64(n) < o.Tol {
			break
		}
	}
	copy(dst.Pix, u)
	o.Obs.Count("denoise.slices", 1)
	o.Obs.Count("denoise.iterations", int64(iters))
	return nil
}
