package denoise

import (
	"math"
	"testing"

	"repro/internal/img"
)

// This file pins the index-arithmetic rewrites of TotalVariation and the
// SplitBregmanCtx Gauss-Seidel sweep to the straightforward originals:
// the reference implementations below are the pre-optimization code,
// kept verbatim, and the tests demand bit-for-bit equal results so the
// micro-optimizations can never drift numerically.

// refTotalVariation is the original g.At-based accumulation.
func refTotalVariation(g *img.Gray) float64 {
	var tv float64
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			v := g.At(x, y)
			if x < g.W-1 {
				tv += abs(g.At(x+1, y) - v)
			}
			if y < g.H-1 {
				tv += abs(g.At(x, y+1) - v)
			}
		}
	}
	return tv
}

// refSplitBregman is the original SplitBregmanCtx with the clamping at()
// closure in the Gauss-Seidel sweep.
func refSplitBregman(f *img.Gray, o Options) *img.Gray {
	w, h := f.W, f.H
	n := w * h
	u := make([]float64, n)
	copy(u, f.Pix)
	dx := make([]float64, n)
	dy := make([]float64, n)
	bx := make([]float64, n)
	by := make([]float64, n)
	mu := o.Lambda
	gamma := 2 * o.Lambda

	at := func(arr []float64, x, y int) float64 {
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		if y < 0 {
			y = 0
		} else if y >= h {
			y = h - 1
		}
		return arr[y*w+x]
	}

	for it := 0; it < o.Iterations; it++ {
		var change float64
		denom := mu + 4*gamma
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				sumN := at(u, x-1, y) + at(u, x+1, y) + at(u, x, y-1) + at(u, x, y+1)
				dTerm := at(dx, x-1, y) - dx[i] + at(dy, x, y-1) - dy[i]
				bTerm := bx[i] - at(bx, x-1, y) + by[i] - at(by, x, y-1)
				nu := (mu*f.Pix[i] + gamma*(sumN+dTerm+bTerm)) / denom
				change += abs(nu - u[i])
				u[i] = nu
			}
		}
		thr := 1.0 / gamma
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				gx, gy := 0.0, 0.0
				if x < w-1 {
					gx = u[y*w+x+1] - u[i]
				}
				if y < h-1 {
					gy = u[(y+1)*w+x] - u[i]
				}
				dx[i] = shrink(gx+bx[i], thr)
				dy[i] = shrink(gy+by[i], thr)
				bx[i] += gx - dx[i]
				by[i] += gy - dy[i]
			}
		}
		if o.Tol > 0 && it > 0 && change/float64(n) < o.Tol {
			break
		}
	}
	out := img.New(w, h)
	copy(out.Pix, u)
	return out
}

func TestTotalVariationMatchesReference(t *testing.T) {
	cases := []*img.Gray{
		addNoise(stepImage(33, 21), 0.2, 11),
		addNoise(stepImage(8, 8), 0.5, 13),
		stepImage(1, 7),  // single column: vertical diffs only
		stepImage(7, 1),  // single row: horizontal diffs only
		img.New(1, 1),    // single pixel: zero TV
		stepImage(64, 2), // two rows exercises both row branches
	}
	for _, g := range cases {
		got := TotalVariation(g)
		want := refTotalVariation(g)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%dx%d: TotalVariation %v != reference %v", g.W, g.H, got, want)
		}
	}
}

func TestSplitBregmanMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		f    *img.Gray
		o    Options
	}{
		{"default", addNoise(stepImage(32, 24), 0.15, 3), DefaultOptions()},
		{"early-stop", addNoise(stepImage(24, 32), 0.1, 5), Options{Lambda: 8, Iterations: 200, Tol: 1e-4}},
		{"tiny", addNoise(stepImage(3, 3), 0.3, 7), Options{Lambda: 4, Iterations: 25}},
		{"one-col", addNoise(stepImage(1, 16), 0.3, 9), Options{Lambda: 4, Iterations: 25}},
		{"one-row", addNoise(stepImage(16, 1), 0.3, 15), Options{Lambda: 4, Iterations: 25}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := SplitBregman(tc.f, tc.o)
			if err != nil {
				t.Fatal(err)
			}
			want := refSplitBregman(tc.f, tc.o)
			for i := range want.Pix {
				if math.Float64bits(got.Pix[i]) != math.Float64bits(want.Pix[i]) {
					t.Fatalf("pixel %d: %v != reference %v", i, got.Pix[i], want.Pix[i])
				}
			}
		})
	}
}
