package denoise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/img"
)

// stepImage builds a two-material test slice: dark left half, bright
// right half, like a wire against oxide in a SEM cross section.
func stepImage(w, h int) *img.Gray {
	g := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := w / 2; x < w; x++ {
			g.Set(x, y, 1)
		}
	}
	return g
}

func addNoise(g *img.Gray, sigma float64, seed int64) *img.Gray {
	rng := rand.New(rand.NewSource(seed))
	out := g.Clone()
	for i := range out.Pix {
		out.Pix[i] += rng.NormFloat64() * sigma
	}
	return out
}

func TestOptionsValidation(t *testing.T) {
	g := img.New(4, 4)
	if _, err := Chambolle(g, Options{Lambda: 0, Iterations: 5}); err == nil {
		t.Errorf("expected error for zero lambda")
	}
	if _, err := Chambolle(g, Options{Lambda: 1, Iterations: 0}); err == nil {
		t.Errorf("expected error for zero iterations")
	}
	if _, err := SplitBregman(g, Options{Lambda: -1, Iterations: 5}); err == nil {
		t.Errorf("expected error for negative lambda")
	}
}

func TestChambolleImprovesPSNR(t *testing.T) {
	clean := stepImage(32, 32)
	noisy := addNoise(clean, 0.15, 7)
	den, err := Chambolle(noisy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := img.PSNR(clean, noisy)
	p1, _ := img.PSNR(clean, den)
	if p1 <= p0 {
		t.Errorf("Chambolle should improve PSNR: %.2f -> %.2f dB", p0, p1)
	}
	if p1-p0 < 3 {
		t.Errorf("expected at least 3 dB improvement, got %.2f", p1-p0)
	}
}

func TestSplitBregmanImprovesPSNR(t *testing.T) {
	clean := stepImage(32, 32)
	noisy := addNoise(clean, 0.15, 11)
	den, err := SplitBregman(noisy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := img.PSNR(clean, noisy)
	p1, _ := img.PSNR(clean, den)
	if p1 <= p0 {
		t.Errorf("SplitBregman should improve PSNR: %.2f -> %.2f dB", p0, p1)
	}
}

func TestDenoisingReducesTV(t *testing.T) {
	clean := stepImage(24, 24)
	noisy := addNoise(clean, 0.2, 3)
	tvNoisy := TotalVariation(noisy)
	for name, fn := range map[string]func(*img.Gray, Options) (*img.Gray, error){
		"chambolle":    Chambolle,
		"splitbregman": SplitBregman,
	} {
		den, err := fn(noisy, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tv := TotalVariation(den); tv >= tvNoisy {
			t.Errorf("%s: TV not reduced: %.2f >= %.2f", name, tv, tvNoisy)
		}
	}
}

func TestEdgePreservation(t *testing.T) {
	// After denoising, the step edge must remain: the intensity
	// difference across the boundary should stay large relative to the
	// in-region variation.
	clean := stepImage(32, 32)
	noisy := addNoise(clean, 0.1, 5)
	den, err := Chambolle(noisy, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	leftMean, rightMean := 0.0, 0.0
	for y := 0; y < 32; y++ {
		leftMean += den.At(4, y)
		rightMean += den.At(27, y)
	}
	leftMean /= 32
	rightMean /= 32
	if rightMean-leftMean < 0.7 {
		t.Errorf("edge washed out: left %.3f right %.3f", leftMean, rightMean)
	}
}

func TestConstantImageIsFixedPoint(t *testing.T) {
	g := img.New(16, 16)
	g.Fill(0.42)
	for name, fn := range map[string]func(*img.Gray, Options) (*img.Gray, error){
		"chambolle":    Chambolle,
		"splitbregman": SplitBregman,
	} {
		den, err := fn(g, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, v := range den.Pix {
			if math.Abs(v-0.42) > 1e-6 {
				t.Fatalf("%s: constant image changed at %d: %v", name, i, v)
			}
		}
	}
}

func TestHighLambdaApproachesIdentity(t *testing.T) {
	noisy := addNoise(stepImage(16, 16), 0.05, 9)
	den, err := Chambolle(noisy, Options{Lambda: 1e6, Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := img.MSE(noisy, den)
	if m > 1e-6 {
		t.Errorf("huge lambda should return near-identity, MSE %v", m)
	}
}

func TestTolEarlyStop(t *testing.T) {
	// With a loose tolerance the result should still be valid (finite).
	noisy := addNoise(stepImage(16, 16), 0.1, 2)
	den, err := Chambolle(noisy, Options{Lambda: 8, Iterations: 500, Tol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range den.Pix {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite pixel %v", v)
		}
	}
}

func TestTotalVariationValues(t *testing.T) {
	g := img.New(2, 1)
	g.Set(1, 0, 1)
	if tv := TotalVariation(g); tv != 1 {
		t.Errorf("TV of single step = %v", tv)
	}
	flat := img.New(5, 5)
	flat.Fill(3)
	if tv := TotalVariation(flat); tv != 0 {
		t.Errorf("TV of constant = %v", tv)
	}
}

func TestShrinkOperator(t *testing.T) {
	cases := []struct{ v, t, want float64 }{
		{2, 1, 1},
		{-2, 1, -1},
		{0.5, 1, 0},
		{-0.5, 1, 0},
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := shrink(c.v, c.t); got != c.want {
			t.Errorf("shrink(%v,%v) = %v want %v", c.v, c.t, got, c.want)
		}
	}
}

// Property: denoised output mean stays close to input mean (TV flows
// preserve mass approximately).
func TestMeanPreservation(t *testing.T) {
	f := func(seed int64) bool {
		noisy := addNoise(stepImage(16, 16), 0.1, seed)
		den, err := Chambolle(noisy, Options{Lambda: 8, Iterations: 40})
		if err != nil {
			return false
		}
		return math.Abs(den.Statistics().Mean-noisy.Statistics().Mean) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: output pixels stay within a small margin of the input range.
func TestRangeStability(t *testing.T) {
	f := func(seed int64) bool {
		noisy := addNoise(stepImage(12, 12), 0.1, seed)
		s0 := noisy.Statistics()
		den, err := SplitBregman(noisy, Options{Lambda: 8, Iterations: 30})
		if err != nil {
			return false
		}
		s1 := den.Statistics()
		return s1.Min > s0.Min-0.1 && s1.Max < s0.Max+0.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkChambolle64(b *testing.B) {
	noisy := addNoise(stepImage(64, 64), 0.1, 1)
	o := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Chambolle(noisy, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitBregman64(b *testing.B) {
	noisy := addNoise(stepImage(64, 64), 0.1, 1)
	o := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SplitBregman(noisy, o); err != nil {
			b.Fatal(err)
		}
	}
}
