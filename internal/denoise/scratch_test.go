package denoise

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/img"
)

// noisy builds a deterministic test slice: a step edge plus noise.
func noisy(w, h int, seed int64) *img.Gray {
	rng := rand.New(rand.NewSource(seed))
	g := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.2
			if x > w/2 {
				v = 0.8
			}
			g.Set(x, y, v+0.1*rng.NormFloat64())
		}
	}
	return g
}

// TestScratchMatchesFresh pins the streaming pipeline's core identity
// contract at the denoiser level: a reused Scratch (dirty from a
// previous, differently-sized slice) must produce bit-identical output
// to the allocate-fresh Ctx entry points.
func TestScratchMatchesFresh(t *testing.T) {
	o := DefaultOptions()
	o.Iterations = 15
	s := &Scratch{}
	// Dirty the scratch on a larger slice first so reuse paths (grown
	// buffers, nonzero remnants) are actually exercised.
	warm := noisy(40, 24, 7)
	warmDst := img.New(40, 24)
	if err := ChambolleInto(context.Background(), warmDst, warm, o, s); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		fresh func(*img.Gray) (*img.Gray, error)
		into  func(dst, f *img.Gray) error
	}{
		{"Chambolle",
			func(f *img.Gray) (*img.Gray, error) { return Chambolle(f, o) },
			func(dst, f *img.Gray) error { return ChambolleInto(context.Background(), dst, f, o, s) }},
		{"SplitBregman",
			func(f *img.Gray) (*img.Gray, error) { return SplitBregman(f, o) },
			func(dst, f *img.Gray) error { return SplitBregmanInto(context.Background(), dst, f, o, s) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := noisy(33, 17, 42)
			want, err := tc.fresh(f)
			if err != nil {
				t.Fatal(err)
			}
			dst := img.New(33, 17)
			dst.Fill(math.NaN()) // prior contents must not matter
			if err := tc.into(dst, f); err != nil {
				t.Fatal(err)
			}
			for i := range want.Pix {
				if want.Pix[i] != dst.Pix[i] {
					t.Fatalf("pixel %d differs: fresh %v scratch %v", i, want.Pix[i], dst.Pix[i])
				}
			}
			// Run again with the now-dirty scratch: still identical.
			dst2 := img.New(33, 17)
			if err := tc.into(dst2, f); err != nil {
				t.Fatal(err)
			}
			for i := range want.Pix {
				if want.Pix[i] != dst2.Pix[i] {
					t.Fatalf("second reuse: pixel %d differs", i)
				}
			}
		})
	}
}

func TestIntoRejectsMismatchedDst(t *testing.T) {
	f := noisy(8, 8, 1)
	dst := img.New(8, 7)
	if err := ChambolleInto(context.Background(), dst, f, DefaultOptions(), nil); err == nil {
		t.Fatal("ChambolleInto accepted a mismatched dst")
	}
	if err := SplitBregmanInto(context.Background(), dst, f, DefaultOptions(), nil); err == nil {
		t.Fatal("SplitBregmanInto accepted a mismatched dst")
	}
}

func TestIntoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := noisy(8, 8, 1)
	dst := img.New(8, 8)
	if err := ChambolleInto(ctx, dst, f, DefaultOptions(), nil); err != context.Canceled {
		t.Fatalf("ChambolleInto under canceled ctx: %v", err)
	}
	if err := SplitBregmanInto(ctx, dst, f, DefaultOptions(), nil); err != context.Canceled {
		t.Fatalf("SplitBregmanInto under canceled ctx: %v", err)
	}
}
