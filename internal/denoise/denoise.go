// Package denoise implements the edge-preserving total-variation (TV)
// denoising algorithms the HiFi-DRAM post-processing step relies on:
// Chambolle's dual projection algorithm (Chambolle 2004) and the
// split-Bregman method for the L1-regularized ROF model (Goldstein &
// Osher 2009). Both minimize
//
//	min_u  TV(u) + lambda/2 * ||u - f||^2
//
// where f is the noisy SEM slice, preserving material edges while
// removing shot noise so that subsequent mutual-information alignment is
// stable.
package denoise

import (
	"context"
	"fmt"
	"math"

	"repro/internal/img"
	"repro/internal/obs"
)

// Options configures a TV denoising run.
type Options struct {
	// Lambda is the fidelity weight: larger values keep the result
	// closer to the input (less smoothing).
	Lambda float64
	// Iterations bounds the outer iteration count.
	Iterations int
	// Tol stops iterating early when the mean absolute update falls
	// below this threshold. Zero disables early stopping.
	Tol float64
	// Obs receives the "denoise.slices" and "denoise.iterations"
	// counters (iterations actually performed, which early stopping
	// makes smaller than the bound). Nil disables instrumentation; the
	// denoised image is identical either way.
	Obs *obs.Observer
}

// DefaultOptions returns parameters that work well for SEM slices
// normalized to [0,1] with moderate shot noise.
func DefaultOptions() Options {
	return Options{Lambda: 8.0, Iterations: 60, Tol: 1e-5}
}

func (o Options) validate() error {
	if o.Lambda <= 0 {
		return fmt.Errorf("denoise: Lambda must be positive, got %v", o.Lambda)
	}
	if o.Iterations <= 0 {
		return fmt.Errorf("denoise: Iterations must be positive, got %d", o.Iterations)
	}
	return nil
}

// Chambolle denoises f with Chambolle's dual projection algorithm and
// returns a new image. The dual step size is fixed at 1/8, the proven
// convergence bound for the 4-neighbor discrete gradient.
func Chambolle(f *img.Gray, o Options) (*img.Gray, error) {
	return ChambolleCtx(context.Background(), f, o)
}

// ChambolleCtx is Chambolle with cooperative cancellation: the context
// is checked once per outer iteration (the natural preemption point —
// tens of milliseconds on pipeline-sized slices), and a cancelled run
// returns ctx.Err() instead of a half-converged image.
func ChambolleCtx(ctx context.Context, f *img.Gray, o Options) (*img.Gray, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	out := img.New(f.W, f.H)
	// The whole algorithm lives in ChambolleInto (the streaming
	// pipeline's scratch-reusing entry point); delegating keeps the two
	// paths bit-identical by construction.
	if err := ChambolleInto(ctx, out, f, o, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// divergence computes the discrete divergence of the dual field (adjoint
// of the forward-difference gradient) into dst.
func divergence(px, py []float64, w, h int, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			var d float64
			if x == 0 {
				d += px[i]
			} else if x == w-1 {
				d -= px[i-1]
			} else {
				d += px[i] - px[i-1]
			}
			if y == 0 {
				d += py[i]
			} else if y == h-1 {
				d -= py[i-w]
			} else {
				d += py[i] - py[i-w]
			}
			dst[i] = d
		}
	}
}

// SplitBregman denoises f with the split-Bregman iteration for
// anisotropic TV. Each outer iteration alternates a Gauss-Seidel solve of
// the quadratic subproblem, soft-thresholding of the auxiliary gradient
// variables (shrinkage), and a Bregman update.
func SplitBregman(f *img.Gray, o Options) (*img.Gray, error) {
	return SplitBregmanCtx(context.Background(), f, o)
}

// SplitBregmanCtx is SplitBregman with cooperative cancellation, checked
// once per outer iteration like ChambolleCtx.
func SplitBregmanCtx(ctx context.Context, f *img.Gray, o Options) (*img.Gray, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	out := img.New(f.W, f.H)
	// Delegates to SplitBregmanInto for the same reason ChambolleCtx
	// delegates: one algorithm body, bit-identical on both paths. The
	// Gauss-Seidel sweep's border handling uses precomputed clamped
	// indices whose operand order matches the closure-based original
	// exactly (pinned by TestSplitBregmanMatchesReference).
	if err := SplitBregmanInto(ctx, out, f, o, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// shrink is the scalar soft-thresholding operator.
func shrink(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// TotalVariation returns the anisotropic total variation of an image:
// the sum of absolute forward differences. The interior runs on row
// slices with the border columns/rows peeled out of the inner loop; the
// horizontal-then-vertical accumulation order per pixel matches the
// straightforward g.At version term for term, so the sum is
// bit-identical to it (pinned by TestTotalVariationMatchesReference).
func TotalVariation(g *img.Gray) float64 {
	var tv float64
	w, h := g.W, g.H
	for y := 0; y < h; y++ {
		row := g.Pix[y*w : (y+1)*w]
		if y < h-1 {
			next := g.Pix[(y+1)*w : (y+2)*w : (y+2)*w]
			for x := 0; x < w-1; x++ {
				v := row[x]
				tv += abs(row[x+1] - v)
				tv += abs(next[x] - v)
			}
			tv += abs(next[w-1] - row[w-1])
		} else {
			for x := 0; x < w-1; x++ {
				tv += abs(row[x+1] - row[x])
			}
		}
	}
	return tv
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func hyp(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
