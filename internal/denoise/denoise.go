// Package denoise implements the edge-preserving total-variation (TV)
// denoising algorithms the HiFi-DRAM post-processing step relies on:
// Chambolle's dual projection algorithm (Chambolle 2004) and the
// split-Bregman method for the L1-regularized ROF model (Goldstein &
// Osher 2009). Both minimize
//
//	min_u  TV(u) + lambda/2 * ||u - f||^2
//
// where f is the noisy SEM slice, preserving material edges while
// removing shot noise so that subsequent mutual-information alignment is
// stable.
package denoise

import (
	"context"
	"fmt"
	"math"

	"repro/internal/img"
	"repro/internal/obs"
)

// Options configures a TV denoising run.
type Options struct {
	// Lambda is the fidelity weight: larger values keep the result
	// closer to the input (less smoothing).
	Lambda float64
	// Iterations bounds the outer iteration count.
	Iterations int
	// Tol stops iterating early when the mean absolute update falls
	// below this threshold. Zero disables early stopping.
	Tol float64
	// Obs receives the "denoise.slices" and "denoise.iterations"
	// counters (iterations actually performed, which early stopping
	// makes smaller than the bound). Nil disables instrumentation; the
	// denoised image is identical either way.
	Obs *obs.Observer
}

// DefaultOptions returns parameters that work well for SEM slices
// normalized to [0,1] with moderate shot noise.
func DefaultOptions() Options {
	return Options{Lambda: 8.0, Iterations: 60, Tol: 1e-5}
}

func (o Options) validate() error {
	if o.Lambda <= 0 {
		return fmt.Errorf("denoise: Lambda must be positive, got %v", o.Lambda)
	}
	if o.Iterations <= 0 {
		return fmt.Errorf("denoise: Iterations must be positive, got %d", o.Iterations)
	}
	return nil
}

// Chambolle denoises f with Chambolle's dual projection algorithm and
// returns a new image. The dual step size is fixed at 1/8, the proven
// convergence bound for the 4-neighbor discrete gradient.
func Chambolle(f *img.Gray, o Options) (*img.Gray, error) {
	return ChambolleCtx(context.Background(), f, o)
}

// ChambolleCtx is Chambolle with cooperative cancellation: the context
// is checked once per outer iteration (the natural preemption point —
// tens of milliseconds on pipeline-sized slices), and a cancelled run
// returns ctx.Err() instead of a half-converged image.
func ChambolleCtx(ctx context.Context, f *img.Gray, o Options) (*img.Gray, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	w, h := f.W, f.H
	// Dual variables p = (px, py).
	px := make([]float64, w*h)
	py := make([]float64, w*h)
	div := make([]float64, w*h)
	u := make([]float64, w*h)
	const tau = 0.125
	invLambda := 1.0 / o.Lambda

	iters := 0
	for it := 0; it < o.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iters++
		// u = f - div(p)/lambda
		divergence(px, py, w, h, div)
		var change float64
		for i := range u {
			nu := f.Pix[i] + div[i]*invLambda
			change += abs(nu - u[i])
			u[i] = nu
		}
		// Gradient ascent on the dual with reprojection onto |p|<=1.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				gx, gy := 0.0, 0.0
				if x < w-1 {
					gx = u[i+1] - u[i]
				}
				if y < h-1 {
					gy = u[i+w] - u[i]
				}
				npx := px[i] + tau*o.Lambda*gx
				npy := py[i] + tau*o.Lambda*gy
				norm := max1(hyp(npx, npy))
				px[i] = npx / norm
				py[i] = npy / norm
			}
		}
		if o.Tol > 0 && it > 0 && change/float64(len(u)) < o.Tol {
			break
		}
	}
	divergence(px, py, w, h, div)
	out := img.New(w, h)
	for i := range u {
		out.Pix[i] = f.Pix[i] + div[i]*invLambda
	}
	o.Obs.Count("denoise.slices", 1)
	o.Obs.Count("denoise.iterations", int64(iters))
	return out, nil
}

// divergence computes the discrete divergence of the dual field (adjoint
// of the forward-difference gradient) into dst.
func divergence(px, py []float64, w, h int, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			var d float64
			if x == 0 {
				d += px[i]
			} else if x == w-1 {
				d -= px[i-1]
			} else {
				d += px[i] - px[i-1]
			}
			if y == 0 {
				d += py[i]
			} else if y == h-1 {
				d -= py[i-w]
			} else {
				d += py[i] - py[i-w]
			}
			dst[i] = d
		}
	}
}

// SplitBregman denoises f with the split-Bregman iteration for
// anisotropic TV. Each outer iteration alternates a Gauss-Seidel solve of
// the quadratic subproblem, soft-thresholding of the auxiliary gradient
// variables (shrinkage), and a Bregman update.
func SplitBregman(f *img.Gray, o Options) (*img.Gray, error) {
	return SplitBregmanCtx(context.Background(), f, o)
}

// SplitBregmanCtx is SplitBregman with cooperative cancellation, checked
// once per outer iteration like ChambolleCtx.
func SplitBregmanCtx(ctx context.Context, f *img.Gray, o Options) (*img.Gray, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	w, h := f.W, f.H
	n := w * h
	u := make([]float64, n)
	copy(u, f.Pix)
	dx := make([]float64, n)
	dy := make([]float64, n)
	bx := make([]float64, n)
	by := make([]float64, n)
	// mu is the fidelity weight, gamma the splitting weight. gamma is
	// tied to mu per the usual heuristic gamma = 2*mu.
	mu := o.Lambda
	gamma := 2 * o.Lambda
	iters := 0

	for it := 0; it < o.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iters++
		// Gauss-Seidel sweep for u. Neighbor reads clamp to the border
		// (replicate padding) via precomputed indices instead of a
		// bounds-checking closure per access: xl/xr are the left/right
		// neighbors (self at the border), iu/id the up/down ones. The
		// operand order of every sum matches the closure-based original
		// exactly, so the iterates are bit-identical (pinned by
		// TestSplitBregmanMatchesReference).
		var change float64
		denom := mu + 4*gamma
		for y := 0; y < h; y++ {
			rowOff := y * w
			upOff := rowOff - w
			if y == 0 {
				upOff = rowOff
			}
			downOff := rowOff + w
			if y == h-1 {
				downOff = rowOff
			}
			for x := 0; x < w; x++ {
				i := rowOff + x
				xl := i - 1
				if x == 0 {
					xl = i
				}
				xr := i + 1
				if x == w-1 {
					xr = i
				}
				iu := upOff + x
				id := downOff + x
				sumN := u[xl] + u[xr] + u[iu] + u[id]
				dTerm := dx[xl] - dx[i] + dy[iu] - dy[i]
				bTerm := bx[i] - bx[xl] + by[i] - by[iu]
				nu := (mu*f.Pix[i] + gamma*(sumN+dTerm+bTerm)) / denom
				change += abs(nu - u[i])
				u[i] = nu
			}
		}
		// Shrinkage of d and Bregman update of b.
		thr := 1.0 / gamma
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				gx, gy := 0.0, 0.0
				if x < w-1 {
					gx = u[y*w+x+1] - u[i]
				}
				if y < h-1 {
					gy = u[(y+1)*w+x] - u[i]
				}
				dx[i] = shrink(gx+bx[i], thr)
				dy[i] = shrink(gy+by[i], thr)
				bx[i] += gx - dx[i]
				by[i] += gy - dy[i]
			}
		}
		if o.Tol > 0 && it > 0 && change/float64(n) < o.Tol {
			break
		}
	}
	out := img.New(w, h)
	copy(out.Pix, u)
	o.Obs.Count("denoise.slices", 1)
	o.Obs.Count("denoise.iterations", int64(iters))
	return out, nil
}

// shrink is the scalar soft-thresholding operator.
func shrink(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// TotalVariation returns the anisotropic total variation of an image:
// the sum of absolute forward differences. The interior runs on row
// slices with the border columns/rows peeled out of the inner loop; the
// horizontal-then-vertical accumulation order per pixel matches the
// straightforward g.At version term for term, so the sum is
// bit-identical to it (pinned by TestTotalVariationMatchesReference).
func TotalVariation(g *img.Gray) float64 {
	var tv float64
	w, h := g.W, g.H
	for y := 0; y < h; y++ {
		row := g.Pix[y*w : (y+1)*w]
		if y < h-1 {
			next := g.Pix[(y+1)*w : (y+2)*w : (y+2)*w]
			for x := 0; x < w-1; x++ {
				v := row[x]
				tv += abs(row[x+1] - v)
				tv += abs(next[x] - v)
			}
			tv += abs(next[w-1] - row[w-1])
		} else {
			for x := 0; x < w-1; x++ {
				tv += abs(row[x+1] - row[x])
			}
		}
	}
	return tv
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func hyp(a, b float64) float64 {
	return math.Sqrt(a*a + b*b)
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
