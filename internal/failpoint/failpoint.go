// Package failpoint is a deterministic fault-injection registry for the
// service's I/O and control plane: named sites compiled into production
// code paths (checkpoint store writes, journal append/fsync, artifact
// publish, supervised attempts, disk-capacity probes) that normally cost
// one atomic load and a nil check, and — when activated with a spec —
// inject the failure modes crashes and full disks really produce: error
// returns, ENOSPC, torn/short writes, delays, panics.
//
// Activation is explicit and process-wide, via Enable (the `-failpoints`
// flag) or EnableFromEnv (HIFIDRAM_FAILPOINTS / HIFIDRAM_FAILPOINT_SEED).
// The spec grammar is
//
//	SITE=KIND[(ARG)][:MOD=V]... [; SITE=...]
//
// with kinds
//
//	error[(msg)]  return a generic injected error
//	enospc        return an error wrapping syscall.ENOSPC
//	torn          return ErrTorn — the site performs its partial write
//	delay(dur)    sleep dur, then proceed normally
//	panic[(msg)]  panic (exercises the panic-isolation paths)
//	value(n)      sites that probe a quantity read n (see Value)
//
// and modifiers
//
//	p=0.5         fire with probability 0.5 (deterministic per-site RNG)
//	times=N       fire at most N times, then pass through
//	after=N       skip the first N evaluations
//
// Example: "journal.sync=enospc:times=1;ckpt.put=error:p=0.1".
//
// Everything is deterministic given the seed: each site draws from its
// own RNG seeded by seed^hash(site), and evaluation counters are
// per-site, so a site evaluated from a single goroutine (every journal
// and store site — both serialize writes under a mutex) fires at exactly
// the same evaluations on every run.
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind is a failure mode a site can inject.
type Kind int

const (
	// KindError returns a generic injected error.
	KindError Kind = iota
	// KindENOSPC returns an error wrapping syscall.ENOSPC — the "disk
	// full" signature the disk-pressure machinery keys on.
	KindENOSPC
	// KindTorn returns ErrTorn; the site reacts by leaving a genuinely
	// torn artifact behind (a half-written entry or frame), simulating a
	// filesystem that persisted part of a write before failing.
	KindTorn
	// KindDelay sleeps, then lets the operation proceed.
	KindDelay
	// KindPanic panics at the site.
	KindPanic
	// KindValue carries an integer for sites that probe a quantity
	// (e.g. free disk bytes); read it with Value, not Inject.
	KindValue
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindENOSPC:
		return "enospc"
	case KindTorn:
		return "torn"
	case KindDelay:
		return "delay"
	case KindPanic:
		return "panic"
	case KindValue:
		return "value"
	}
	return "unknown"
}

// ErrTorn is returned by Inject at a site configured to tear its write.
// The site must react by persisting a deliberately truncated artifact
// (and still reporting the operation failed) — that is the physical
// signature this kind exists to reproduce.
var ErrTorn = errors.New("failpoint: torn write")

// ErrInjected is wrapped by every KindError injection, so tests can
// assert an error came from a failpoint rather than the real code path.
var ErrInjected = errors.New("failpoint: injected error")

// point is one configured site.
type point struct {
	mu    sync.Mutex
	kind  Kind
	msg   string
	delay time.Duration
	value int64
	prob  float64 // fire probability; 1 means always
	times int     // max fires; 0 means unlimited
	after int     // evaluations to skip first
	evals int
	fires int
	rng   *rand.Rand
}

// registry is an immutable-once-built site table; the active registry is
// swapped atomically so the disabled fast path is one pointer load.
type registry struct {
	points map[string]*point
}

var active atomic.Pointer[registry]

// Enabled reports whether any failpoint spec is active.
func Enabled() bool {
	return active.Load() != nil
}

// Disable deactivates all failpoints (the startup default).
func Disable() {
	active.Store(nil)
}

// Enable parses spec and activates it with the given seed, replacing any
// previous configuration. An empty spec disables injection.
func Enable(spec string, seed int64) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Disable()
		return nil
	}
	points := make(map[string]*point)
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, action, ok := strings.Cut(entry, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return fmt.Errorf("failpoint: bad entry %q (want site=kind[:mods])", entry)
		}
		p, err := parseAction(action)
		if err != nil {
			return fmt.Errorf("failpoint: site %q: %w", site, err)
		}
		// Per-site seeding: the draw sequence of one site is independent
		// of every other site's evaluation order.
		h := fnv.New64a()
		_, _ = h.Write([]byte(site))
		p.rng = rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
		points[site] = p
	}
	active.Store(&registry{points: points})
	return nil
}

// EnvSpec and EnvSeed are the environment variables EnableFromEnv reads.
const (
	EnvSpec = "HIFIDRAM_FAILPOINTS"
	EnvSeed = "HIFIDRAM_FAILPOINT_SEED"
)

// EnableFromEnv activates the spec in HIFIDRAM_FAILPOINTS (no-op when
// unset) with the seed in HIFIDRAM_FAILPOINT_SEED (default 1).
func EnableFromEnv() error {
	spec := os.Getenv(EnvSpec)
	if spec == "" {
		return nil
	}
	seed := int64(1)
	if s := os.Getenv(EnvSeed); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("failpoint: bad %s %q: %w", EnvSeed, s, err)
		}
		seed = n
	}
	return Enable(spec, seed)
}

// parseAction parses "kind[(arg)][:mod=v]...".
func parseAction(s string) (*point, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	kindSpec := strings.TrimSpace(parts[0])
	arg := ""
	if i := strings.IndexByte(kindSpec, '('); i >= 0 {
		if !strings.HasSuffix(kindSpec, ")") {
			return nil, fmt.Errorf("bad kind %q (unclosed argument)", kindSpec)
		}
		arg = kindSpec[i+1 : len(kindSpec)-1]
		kindSpec = kindSpec[:i]
	}
	p := &point{prob: 1}
	switch kindSpec {
	case "error":
		p.kind = KindError
		p.msg = arg
	case "enospc":
		p.kind = KindENOSPC
	case "torn":
		p.kind = KindTorn
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay argument %q (want a duration)", arg)
		}
		p.kind = KindDelay
		p.delay = d
	case "panic":
		p.kind = KindPanic
		p.msg = arg
	case "value":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value argument %q (want an integer)", arg)
		}
		p.kind = KindValue
		p.value = n
	default:
		return nil, fmt.Errorf("unknown kind %q (want error, enospc, torn, delay, panic or value)", kindSpec)
	}
	for _, mod := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return nil, fmt.Errorf("bad modifier %q (want mod=value)", mod)
		}
		switch key {
		case "p":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("bad probability %q (want 0..1)", val)
			}
			p.prob = f
		case "times":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad times %q (want a positive integer)", val)
			}
			p.times = n
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad after %q (want a non-negative integer)", val)
			}
			p.after = n
		default:
			return nil, fmt.Errorf("unknown modifier %q (want p, times or after)", key)
		}
	}
	return p, nil
}

// fire evaluates the site's gates and consumes one evaluation. Reports
// whether the site fires this time.
func (p *point) fire() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.evals++
	if p.evals <= p.after {
		return false
	}
	if p.times > 0 && p.fires >= p.times {
		return false
	}
	if p.prob < 1 && p.rng.Float64() >= p.prob {
		return false
	}
	p.fires++
	return true
}

// Inject evaluates site and performs its injection. The disabled (or
// unconfigured, or not-firing) fast path returns nil: one atomic load,
// one map probe at most. When the site fires:
//
//   - KindError and KindENOSPC return the injected error
//   - KindTorn returns ErrTorn (the caller tears its write)
//   - KindDelay sleeps, then returns nil — the operation proceeds
//   - KindPanic panics
//   - KindValue returns nil (probe it with Value instead)
func Inject(site string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	p, ok := r.points[site]
	if !ok || !p.fire() {
		return nil
	}
	switch p.kind {
	case KindError:
		if p.msg != "" {
			return fmt.Errorf("%w at %s: %s", ErrInjected, site, p.msg)
		}
		return fmt.Errorf("%w at %s", ErrInjected, site)
	case KindENOSPC:
		return fmt.Errorf("failpoint at %s: %w", site, syscall.ENOSPC)
	case KindTorn:
		return fmt.Errorf("at %s: %w", site, ErrTorn)
	case KindDelay:
		time.Sleep(p.delay)
		return nil
	case KindPanic:
		msg := p.msg
		if msg == "" {
			msg = "failpoint panic at " + site
		}
		panic(msg)
	}
	return nil
}

// Value evaluates a KindValue site and returns its integer. ok is false
// when injection is disabled, the site is unconfigured or of another
// kind, or its gates (p/times/after) hold it back this evaluation.
func Value(site string) (int64, bool) {
	r := active.Load()
	if r == nil {
		return 0, false
	}
	p, ok := r.points[site]
	if !ok || p.kind != KindValue || !p.fire() {
		return 0, false
	}
	return p.value, true
}

// Hits reports how many times site has fired (0 for unknown sites) —
// the assertion hook deterministic injection tests count against.
func Hits(site string) int {
	r := active.Load()
	if r == nil {
		return 0
	}
	p, ok := r.points[site]
	if !ok {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fires
}

// Sites lists the configured site names, sorted — the `-failpoints`
// startup log line.
func Sites() []string {
	r := active.Load()
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.points))
	for site := range r.points {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}
