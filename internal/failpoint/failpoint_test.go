package failpoint

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

// Every test that enables failpoints must restore the disabled default;
// the registry is process-global.
func reset(t *testing.T) {
	t.Helper()
	t.Cleanup(Disable)
}

func TestDisabledIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	if err := Inject("any.site"); err != nil {
		t.Fatalf("disabled Inject returned %v", err)
	}
	if _, ok := Value("any.site"); ok {
		t.Fatal("disabled Value returned ok")
	}
	if Hits("any.site") != 0 {
		t.Fatal("disabled Hits nonzero")
	}
}

func TestErrorKind(t *testing.T) {
	reset(t)
	if err := Enable("a.b=error(boom)", 1); err != nil {
		t.Fatal(err)
	}
	err := Inject("a.b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := Inject("other.site"); err != nil {
		t.Fatalf("unconfigured site returned %v", err)
	}
	_ = Inject("a.b")
	if Hits("a.b") != 2 {
		t.Fatalf("Hits = %d, want 2", Hits("a.b"))
	}
}

func TestENOSPCKind(t *testing.T) {
	reset(t)
	if err := Enable("disk=enospc", 1); err != nil {
		t.Fatal(err)
	}
	err := Inject("disk")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
}

func TestTornKind(t *testing.T) {
	reset(t)
	if err := Enable("w=torn", 1); err != nil {
		t.Fatal(err)
	}
	if err := Inject("w"); !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn, got %v", err)
	}
}

func TestDelayKind(t *testing.T) {
	reset(t)
	if err := Enable("slow=delay(20ms)", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("slow"); err != nil {
		t.Fatalf("delay returned %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
}

func TestPanicKind(t *testing.T) {
	reset(t)
	if err := Enable("p=panic(kaboom)", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recover = %v, want kaboom", r)
		}
	}()
	_ = Inject("p")
	t.Fatal("Inject did not panic")
}

func TestValueKind(t *testing.T) {
	reset(t)
	if err := Enable("free=value(4096):times=2", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		v, ok := Value("free")
		if !ok || v != 4096 {
			t.Fatalf("eval %d: Value = %d,%v want 4096,true", i, v, ok)
		}
	}
	if _, ok := Value("free"); ok {
		t.Fatal("Value fired past times=2")
	}
	// Inject on a value site never errors.
	if err := Inject("free"); err != nil {
		t.Fatalf("Inject on value site returned %v", err)
	}
}

func TestTimesAndAfter(t *testing.T) {
	reset(t)
	if err := Enable("s=error:after=2:times=3", 1); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if Inject("s") != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired at evaluation %d despite after=2", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
}

// Same seed → identical fire pattern; different seed → (for this spec)
// a different one. This is the determinism the chaos smokes depend on.
func TestProbabilityDeterministic(t *testing.T) {
	reset(t)
	pattern := func(seed int64) []bool {
		if err := Enable("r=error:p=0.5", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("r") != nil
		}
		return out
	}
	a1 := pattern(7)
	a2 := pattern(7)
	b := pattern(8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverged at evaluation %d", i)
		}
	}
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 64-evaluation patterns")
	}
}

func TestMultiSiteSpecAndSites(t *testing.T) {
	reset(t)
	if err := Enable(" a=error ; b=enospc:times=1 ;; c=value(9) ", 1); err != nil {
		t.Fatal(err)
	}
	got := Sites()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	reset(t)
	for _, spec := range []string{
		"noequals",
		"=error",
		"s=unknownkind",
		"s=delay(notadur)",
		"s=value(x)",
		"s=error:p=2",
		"s=error:times=0",
		"s=error:after=-1",
		"s=error:bogus=1",
		"s=delay(1s",
	} {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	reset(t)
	t.Setenv(EnvSpec, "e=error")
	t.Setenv(EnvSeed, "42")
	if err := EnableFromEnv(); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not enabled from env")
	}
	if err := Inject("e"); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-enabled site returned %v", err)
	}
	t.Setenv(EnvSeed, "notanumber")
	if err := EnableFromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestEmptySpecDisables(t *testing.T) {
	reset(t)
	if err := Enable("x=error", 1); err != nil {
		t.Fatal(err)
	}
	if err := Enable("  ", 1); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("empty spec left failpoints enabled")
	}
}
