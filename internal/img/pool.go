package img

import (
	"fmt"
	"sync"
)

// Pool recycles Gray image buffers between pipeline slices so a
// streaming reconstruction's peak heap is set by the pipeline window,
// not the stack depth. Get hands out a zeroed image with exactly the
// semantics of New (so a pooled buffer is substitutable for a fresh
// allocation bit for bit), and Put returns it for reuse.
//
// Ownership is explicit: every buffer obtained from Get is outstanding
// until exactly one Put. The pool tracks outstanding buffers and panics
// on a double release or on a Put of an image it never handed out —
// both are use-after-free bugs in the caller that would otherwise
// surface as silent pixel corruption far from the cause.
//
// A nil *Pool is fully functional and simply does not reuse: Get
// allocates via New and Put is a no-op. Callers never need to guard.
//
// Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[[2]int][]*Gray
	out  map[*Gray]bool

	hits, misses, puts int64
	live, peakLive     int64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		free: make(map[[2]int][]*Gray),
		out:  make(map[*Gray]bool),
	}
}

// Get returns a zeroed W×H image, reusing a released buffer of the same
// dimensions when one is available. Reused buffers are cleared before
// being handed out, so Get is observationally identical to New.
func (p *Pool) Get(w, h int) *Gray {
	if p == nil {
		return New(w, h)
	}
	p.mu.Lock()
	key := [2]int{w, h}
	var g *Gray
	if stack := p.free[key]; len(stack) > 0 {
		g = stack[len(stack)-1]
		stack[len(stack)-1] = nil
		p.free[key] = stack[:len(stack)-1]
		p.hits++
	} else {
		p.misses++
	}
	p.live++
	if p.live > p.peakLive {
		p.peakLive = p.live
	}
	if g != nil {
		p.out[g] = true
		p.mu.Unlock()
		for i := range g.Pix {
			g.Pix[i] = 0
		}
		return g
	}
	p.mu.Unlock()
	g = New(w, h)
	p.mu.Lock()
	p.out[g] = true
	p.mu.Unlock()
	return g
}

// Put releases a buffer obtained from Get back to the pool. Releasing
// the same buffer twice, or a buffer the pool never handed out, panics:
// after a Put the caller must not touch the image again.
func (p *Pool) Put(g *Gray) {
	if p == nil {
		return
	}
	if g == nil {
		panic("img: pool: Put of nil image")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.out[g] {
		panic(fmt.Sprintf("img: pool: Put of %dx%d buffer not outstanding (double release or foreign image)", g.W, g.H))
	}
	delete(p.out, g)
	p.live--
	p.puts++
	key := [2]int{g.W, g.H}
	p.free[key] = append(p.free[key], g)
}

// PoolStats is a snapshot of a pool's accounting.
type PoolStats struct {
	// Hits counts Gets served from a recycled buffer; Misses counts
	// Gets that had to allocate.
	Hits, Misses int64
	// Puts counts releases.
	Puts int64
	// Live is the number of currently outstanding buffers; PeakLive is
	// the high-water mark, the pool's bound on simultaneously held
	// images (the streaming pipeline's working-set size).
	Live, PeakLive int64
}

// Stats returns a snapshot of the pool's counters (zero for nil).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		Hits: p.hits, Misses: p.misses, Puts: p.puts,
		Live: p.live, PeakLive: p.peakLive,
	}
}
