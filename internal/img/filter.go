package img

import (
	"math"
	"sort"
)

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation, truncated at 3 sigma (radius = ceil(3*sigma)).
func GaussianKernel(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur returns g convolved with a separable Gaussian of the given
// standard deviation, using edge extension at the boundaries.
func GaussianBlur(g *Gray, sigma float64) *Gray {
	k := GaussianKernel(sigma)
	r := len(k) / 2
	// Horizontal pass.
	tmp := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			for i := -r; i <= r; i++ {
				s += k[i+r] * g.AtClamp(x+i, y)
			}
			tmp.Set(x, y, s)
		}
	}
	// Vertical pass.
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			for i := -r; i <= r; i++ {
				s += k[i+r] * tmp.AtClamp(x, y+i)
			}
			out.Set(x, y, s)
		}
	}
	return out
}

// MedianFilter returns g filtered with a square median window of the
// given radius (window side = 2*radius+1), with edge extension. Median
// filtering is the classical salt-and-pepper noise remover used before
// slice alignment.
func MedianFilter(g *Gray, radius int) *Gray {
	if radius <= 0 {
		return g.Clone()
	}
	out := New(g.W, g.H)
	side := 2*radius + 1
	window := make([]float64, 0, side*side)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			window = window[:0]
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					window = append(window, g.AtClamp(x+dx, y+dy))
				}
			}
			sort.Float64s(window)
			out.Set(x, y, window[len(window)/2])
		}
	}
	return out
}

// SobelMagnitude returns the gradient magnitude of g computed with the
// 3x3 Sobel operator. Used to locate feature-line direction when finding
// the region of interest.
func SobelMagnitude(g *Gray) *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			gx := -g.AtClamp(x-1, y-1) + g.AtClamp(x+1, y-1) +
				-2*g.AtClamp(x-1, y) + 2*g.AtClamp(x+1, y) +
				-g.AtClamp(x-1, y+1) + g.AtClamp(x+1, y+1)
			gy := -g.AtClamp(x-1, y-1) - 2*g.AtClamp(x, y-1) - g.AtClamp(x+1, y-1) +
				g.AtClamp(x-1, y+1) + 2*g.AtClamp(x, y+1) + g.AtClamp(x+1, y+1)
			out.Set(x, y, math.Hypot(gx, gy))
		}
	}
	return out
}

// BoxBlur returns g convolved with a (2r+1)² box filter, edge extended.
func BoxBlur(g *Gray, r int) *Gray {
	if r <= 0 {
		return g.Clone()
	}
	out := New(g.W, g.H)
	inv := 1.0 / float64((2*r+1)*(2*r+1))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					s += g.AtClamp(x+dx, y+dy)
				}
			}
			out.Set(x, y, s*inv)
		}
	}
	return out
}
