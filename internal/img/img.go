// Package img provides the grayscale floating-point image type used by the
// SEM simulator and the post-processing pipeline (denoising, registration,
// volume reslicing). Pixel values are float64 in an arbitrary intensity
// scale; SEM images use [0,1] by convention.
package img

import (
	"errors"
	"fmt"
	"math"
)

// Gray is a W×H grayscale image with float64 pixels stored row-major.
type Gray struct {
	W, H int
	Pix  []float64
}

// New returns a zeroed W×H image. It panics on non-positive dimensions,
// since every caller constructs images from validated geometry.
func New(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("img: invalid dimensions %dx%d", w, h))
	}
	return &Gray{W: w, H: h, Pix: make([]float64, w*h)}
}

// Validate reports whether the image is structurally sound: positive
// dimensions and a pixel buffer of exactly W*H entries. A zero-value
// Gray (or one with a truncated buffer) fails, letting pipeline stages
// reject it with an error up front instead of panicking on first access.
func (g *Gray) Validate() error {
	if g == nil {
		return fmt.Errorf("img: nil image")
	}
	if g.W <= 0 || g.H <= 0 {
		return fmt.Errorf("img: invalid dimensions %dx%d", g.W, g.H)
	}
	if len(g.Pix) != g.W*g.H {
		return fmt.Errorf("img: pixel buffer holds %d values, want %d for %dx%d",
			len(g.Pix), g.W*g.H, g.W, g.H)
	}
	return nil
}

// At returns the pixel at (x, y). Out-of-bounds access panics via the
// slice bounds check; use AtClamp for edge-extended access.
func (g *Gray) At(x, y int) float64 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y).
func (g *Gray) Set(x, y int, v float64) { g.Pix[y*g.W+x] = v }

// AtClamp returns the pixel at (x, y), clamping coordinates to the image
// bounds (edge extension), the standard boundary rule for filtering.
func (g *Gray) AtClamp(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	out := New(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v float64) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Crop returns the sub-image [x0,x1)×[y0,y1) as a new image.
func (g *Gray) Crop(x0, y0, x1, y1 int) (*Gray, error) {
	if x0 < 0 || y0 < 0 || x1 > g.W || y1 > g.H || x0 >= x1 || y0 >= y1 {
		return nil, fmt.Errorf("img: crop [%d,%d)x[%d,%d) out of %dx%d bounds",
			x0, x1, y0, y1, g.W, g.H)
	}
	out := New(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], g.Pix[y*g.W+x0:y*g.W+x1])
	}
	return out, nil
}

// Stats describes the intensity distribution of an image.
type Stats struct {
	Min, Max, Mean, Std float64
}

// Statistics computes min/max/mean/standard deviation over all pixels.
func (g *Gray) Statistics() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sum2 float64
	for _, v := range g.Pix {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
		sum2 += v * v
	}
	n := float64(len(g.Pix))
	s.Mean = sum / n
	variance := sum2/n - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	return s
}

// MinMaxIn returns the intensity extrema over the subregion
// [x0,x1)×[y0,y1), exactly the Min/Max that Crop(x0,y0,x1,y1) followed
// by Statistics would report, without materializing the crop. The
// registration kernel calls it once per candidate shift, so it must not
// allocate. Bounds are the caller's contract (as with At); an empty or
// out-of-range window panics via the slice bounds check.
func (g *Gray) MinMaxIn(x0, y0, x1, y1 int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for y := y0; y < y1; y++ {
		row := g.Pix[y*g.W+x0 : y*g.W+x1]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// BinIndex maps an intensity to one of bins equal-width histogram bins
// over [lo, hi], clamping out-of-range values into the first/last bin; a
// degenerate range (hi <= lo) maps everything to bin 0. This is the
// binning rule mutual information uses — kept here so the allocation-free
// registration kernel and the reference implementation share one
// definition and stay bit-identical.
func BinIndex(v, lo, hi float64, bins int) int {
	if hi <= lo {
		return 0
	}
	k := int(float64(bins) * (v - lo) / (hi - lo))
	if k < 0 {
		k = 0
	} else if k >= bins {
		k = bins - 1
	}
	return k
}

// Normalize linearly rescales the image so that its min maps to 0 and its
// max maps to 1. A constant image becomes all zeros.
func (g *Gray) Normalize() {
	s := g.Statistics()
	span := s.Max - s.Min
	if span == 0 {
		g.Fill(0)
		return
	}
	for i, v := range g.Pix {
		g.Pix[i] = (v - s.Min) / span
	}
}

// Clamp limits every pixel to [lo, hi].
func (g *Gray) Clamp(lo, hi float64) {
	for i, v := range g.Pix {
		if v < lo {
			g.Pix[i] = lo
		} else if v > hi {
			g.Pix[i] = hi
		}
	}
}

// Add accumulates o into g pixel-wise. Images must have equal dimensions.
func (g *Gray) Add(o *Gray) error {
	if g.W != o.W || g.H != o.H {
		return errDims(g, o)
	}
	for i := range g.Pix {
		g.Pix[i] += o.Pix[i]
	}
	return nil
}

// ScaleBy multiplies every pixel by k.
func (g *Gray) ScaleBy(k float64) {
	for i := range g.Pix {
		g.Pix[i] *= k
	}
}

func errDims(a, b *Gray) error {
	return fmt.Errorf("img: dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
}

// MSE returns the mean squared error between two equal-size images.
func MSE(a, b *Gray) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, errDims(a, b)
	}
	var s float64
	for i := range a.Pix {
		d := a.Pix[i] - b.Pix[i]
		s += d * d
	}
	return s / float64(len(a.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between a reference
// and a test image, assuming a peak intensity of 1.0. It returns +Inf for
// identical images.
func PSNR(ref, test *Gray) (float64, error) {
	mse, err := MSE(ref, test)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return -10 * math.Log10(mse), nil
}

// ErrDims is returned (wrapped) by operations on mismatched image sizes.
var ErrDims = errors.New("img: dimension mismatch")

// Histogram bins the image intensities into n equal-width bins over
// [lo, hi]. Values outside the range are clamped into the first/last bin.
func (g *Gray) Histogram(n int, lo, hi float64) []int {
	h := make([]int, n)
	if hi <= lo {
		hi = lo + 1
	}
	scale := float64(n) / (hi - lo)
	for _, v := range g.Pix {
		b := int((v - lo) * scale)
		if b < 0 {
			b = 0
		} else if b >= n {
			b = n - 1
		}
		h[b]++
	}
	return h
}

// Translate returns a copy of g shifted by (dx, dy) pixels with edge
// extension: the pixel at (x,y) of the result samples g at (x-dx, y-dy).
func (g *Gray) Translate(dx, dy int) *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Set(x, y, g.AtClamp(x-dx, y-dy))
		}
	}
	return out
}

// TranslateInto is Translate writing into a caller-provided destination
// (which must match g's dimensions), so a pooled buffer can absorb the
// shifted image without a fresh allocation. Every pixel of dst is
// overwritten; the sampling order and edge clamping are exactly
// Translate's, so the result is bit-identical.
func (g *Gray) TranslateInto(dst *Gray, dx, dy int) error {
	if dst.W != g.W || dst.H != g.H || len(dst.Pix) != dst.W*dst.H {
		return fmt.Errorf("img: translate dst %dx%d does not match source %dx%d",
			dst.W, dst.H, g.W, g.H)
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			dst.Set(x, y, g.AtClamp(x-dx, y-dy))
		}
	}
	return nil
}

// BilinearAt samples the image at real coordinates (x, y) with bilinear
// interpolation and edge clamping.
func (g *Gray) BilinearAt(x, y float64) float64 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := x - float64(x0)
	fy := y - float64(y0)
	v00 := g.AtClamp(x0, y0)
	v10 := g.AtClamp(x0+1, y0)
	v01 := g.AtClamp(x0, y0+1)
	v11 := g.AtClamp(x0+1, y0+1)
	return v00*(1-fx)*(1-fy) + v10*fx*(1-fy) + v01*(1-fx)*fy + v11*fx*fy
}

// TranslateSubpixel returns g shifted by real-valued (dx, dy) using
// bilinear interpolation, for sub-pixel drift injection and correction.
func (g *Gray) TranslateSubpixel(dx, dy float64) *Gray {
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Set(x, y, g.BilinearAt(float64(x)-dx, float64(y)-dy))
		}
	}
	return out
}

// Downsample returns the image reduced by an integer factor using box
// averaging. The factor must be >= 1; trailing rows/columns that do not
// fill a complete box are dropped.
func (g *Gray) Downsample(factor int) *Gray {
	if factor <= 1 {
		return g.Clone()
	}
	w := g.W / factor
	h := g.H / factor
	if w == 0 || h == 0 {
		return g.Clone()
	}
	out := New(w, h)
	inv := 1.0 / float64(factor*factor)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var s float64
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					s += g.At(x*factor+dx, y*factor+dy)
				}
			}
			out.Set(x, y, s*inv)
		}
	}
	return out
}
