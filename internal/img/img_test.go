package img

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := New(3, 2).Validate(); err != nil {
		t.Errorf("fresh image invalid: %v", err)
	}
	for name, g := range map[string]*Gray{
		"nil":           nil,
		"zero-value":    {},
		"negative-dims": {W: -1, H: 4},
		"short-pix":     {W: 2, H: 2, Pix: make([]float64, 2)},
		"long-pix":      {W: 2, H: 2, Pix: make([]float64, 9)},
	} {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}

func TestNewAndAccess(t *testing.T) {
	g := New(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Pix) != 12 {
		t.Fatalf("bad image shape: %dx%d len %d", g.W, g.H, len(g.Pix))
	}
	g.Set(2, 1, 0.5)
	if g.At(2, 1) != 0.5 {
		t.Errorf("At = %v", g.At(2, 1))
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for zero width")
		}
	}()
	New(0, 5)
}

func TestAtClamp(t *testing.T) {
	g := New(3, 3)
	for i := range g.Pix {
		g.Pix[i] = float64(i)
	}
	if got := g.AtClamp(-5, -5); got != g.At(0, 0) {
		t.Errorf("clamp top-left = %v", got)
	}
	if got := g.AtClamp(99, 99); got != g.At(2, 2) {
		t.Errorf("clamp bottom-right = %v", got)
	}
	if got := g.AtClamp(1, 1); got != g.At(1, 1) {
		t.Errorf("clamp interior = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 0, 1)
	c := g.Clone()
	c.Set(0, 0, 2)
	if g.At(0, 0) != 1 {
		t.Errorf("clone mutated original")
	}
}

func TestCrop(t *testing.T) {
	g := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y, float64(y*10+x))
		}
	}
	c, err := g.Crop(2, 3, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 3 || c.H != 5 {
		t.Fatalf("crop dims %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != g.At(2, 3) || c.At(2, 4) != g.At(4, 7) {
		t.Errorf("crop content wrong")
	}
	if _, err := g.Crop(-1, 0, 5, 5); err == nil {
		t.Errorf("expected error for negative crop")
	}
	if _, err := g.Crop(5, 5, 5, 8); err == nil {
		t.Errorf("expected error for empty crop")
	}
	if _, err := g.Crop(0, 0, 11, 5); err == nil {
		t.Errorf("expected error for oversize crop")
	}
}

func TestStatisticsAndNormalize(t *testing.T) {
	g := New(2, 2)
	copy(g.Pix, []float64{1, 2, 3, 4})
	s := g.Statistics()
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("stats = %+v", s)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("std = %v want %v", s.Std, wantStd)
	}
	g.Normalize()
	s = g.Statistics()
	if s.Min != 0 || s.Max != 1 {
		t.Errorf("normalized range [%v,%v]", s.Min, s.Max)
	}
	flat := New(3, 3)
	flat.Fill(7)
	flat.Normalize()
	if flat.Statistics().Max != 0 {
		t.Errorf("constant image should normalize to zero")
	}
}

func TestClampAddScale(t *testing.T) {
	g := New(1, 3)
	copy(g.Pix, []float64{-1, 0.5, 2})
	g.Clamp(0, 1)
	if g.Pix[0] != 0 || g.Pix[1] != 0.5 || g.Pix[2] != 1 {
		t.Errorf("clamp = %v", g.Pix)
	}
	o := New(1, 3)
	o.Fill(1)
	if err := g.Add(o); err != nil {
		t.Fatal(err)
	}
	if g.Pix[0] != 1 || g.Pix[2] != 2 {
		t.Errorf("add = %v", g.Pix)
	}
	g.ScaleBy(0.5)
	if g.Pix[2] != 1 {
		t.Errorf("scale = %v", g.Pix)
	}
	if err := g.Add(New(2, 2)); err == nil {
		t.Errorf("expected dimension error")
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	if m, err := MSE(a, b); err != nil || m != 0 {
		t.Errorf("MSE identical = %v, %v", m, err)
	}
	if p, err := PSNR(a, b); err != nil || !math.IsInf(p, 1) {
		t.Errorf("PSNR identical should be +Inf, got %v", p)
	}
	b.Fill(0.1)
	m, err := MSE(a, b)
	if err != nil || math.Abs(m-0.01) > 1e-12 {
		t.Errorf("MSE = %v", m)
	}
	p, _ := PSNR(a, b)
	if math.Abs(p-20) > 1e-9 {
		t.Errorf("PSNR = %v want 20", p)
	}
	if _, err := MSE(a, New(3, 3)); err == nil {
		t.Errorf("expected dimension error")
	}
}

func TestHistogram(t *testing.T) {
	g := New(1, 4)
	copy(g.Pix, []float64{0, 0.26, 0.51, 2.0})
	h := g.Histogram(4, 0, 1)
	if h[0] != 1 || h[1] != 1 || h[2] != 1 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	// Degenerate range falls back to unit width.
	h = g.Histogram(2, 0.5, 0.5)
	if h[0]+h[1] != 4 {
		t.Errorf("degenerate histogram lost pixels: %v", h)
	}
}

func TestTranslateInteger(t *testing.T) {
	g := New(3, 3)
	g.Set(1, 1, 1)
	s := g.Translate(1, 0)
	if s.At(2, 1) != 1 {
		t.Errorf("translate failed: %v", s.Pix)
	}
	if s.At(1, 1) != 0 {
		t.Errorf("original position should be vacated")
	}
}

func TestBilinearAt(t *testing.T) {
	g := New(2, 2)
	copy(g.Pix, []float64{0, 1, 0, 1})
	if v := g.BilinearAt(0.5, 0.5); math.Abs(v-0.5) > 1e-12 {
		t.Errorf("bilinear center = %v", v)
	}
	if v := g.BilinearAt(0, 0); v != 0 {
		t.Errorf("bilinear corner = %v", v)
	}
	if v := g.BilinearAt(-3, -3); v != 0 {
		t.Errorf("bilinear clamps = %v", v)
	}
}

func TestTranslateSubpixelRoundTrip(t *testing.T) {
	// Shifting a smooth image by +0.5 then -0.5 should approximately
	// restore it away from the borders.
	g := New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			g.Set(x, y, math.Sin(float64(x)/3)+math.Cos(float64(y)/4))
		}
	}
	s := g.TranslateSubpixel(0.5, 0).TranslateSubpixel(-0.5, 0)
	for y := 2; y < 14; y++ {
		for x := 2; x < 14; x++ {
			if math.Abs(s.At(x, y)-g.At(x, y)) > 0.05 {
				t.Fatalf("round trip error at (%d,%d): %v vs %v", x, y, s.At(x, y), g.At(x, y))
			}
		}
	}
}

func TestDownsample(t *testing.T) {
	g := New(4, 4)
	for i := range g.Pix {
		g.Pix[i] = float64(i % 2)
	}
	d := g.Downsample(2)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("downsample dims %dx%d", d.W, d.H)
	}
	if d.At(0, 0) != 0.5 {
		t.Errorf("box average = %v", d.At(0, 0))
	}
	if same := g.Downsample(1); same.W != 4 {
		t.Errorf("factor 1 should be identity")
	}
	if same := g.Downsample(10); same.W != 4 {
		t.Errorf("oversized factor should return clone")
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		k := GaussianKernel(sigma)
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("sigma %v: kernel sum %v", sigma, sum)
		}
		if len(k)%2 != 1 {
			t.Errorf("kernel must have odd length, got %d", len(k))
		}
	}
	if k := GaussianKernel(0); len(k) != 1 || k[0] != 1 {
		t.Errorf("zero sigma should be identity kernel")
	}
}

func TestGaussianBlurPreservesMeanAndReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(32, 32)
	for i := range g.Pix {
		g.Pix[i] = rng.Float64()
	}
	b := GaussianBlur(g, 1.5)
	s0, s1 := g.Statistics(), b.Statistics()
	if math.Abs(s0.Mean-s1.Mean) > 0.02 {
		t.Errorf("blur changed mean: %v -> %v", s0.Mean, s1.Mean)
	}
	if s1.Std >= s0.Std {
		t.Errorf("blur should reduce variance: %v -> %v", s0.Std, s1.Std)
	}
}

func TestMedianFilterRemovesImpulse(t *testing.T) {
	g := New(9, 9)
	g.Fill(0.5)
	g.Set(4, 4, 10) // impulse
	m := MedianFilter(g, 1)
	if m.At(4, 4) != 0.5 {
		t.Errorf("median should remove impulse, got %v", m.At(4, 4))
	}
	if id := MedianFilter(g, 0); id.At(4, 4) != 10 {
		t.Errorf("radius 0 should be identity")
	}
}

func TestSobelRespondsToEdge(t *testing.T) {
	g := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 4; x < 8; x++ {
			g.Set(x, y, 1)
		}
	}
	s := SobelMagnitude(g)
	if s.At(4, 4) <= s.At(1, 4) {
		t.Errorf("edge response %v should exceed flat response %v", s.At(4, 4), s.At(1, 4))
	}
}

func TestBoxBlurIdentityAndSmoothing(t *testing.T) {
	g := New(5, 5)
	g.Set(2, 2, 1)
	if b := BoxBlur(g, 0); b.At(2, 2) != 1 {
		t.Errorf("radius 0 should be identity")
	}
	b := BoxBlur(g, 1)
	if math.Abs(b.At(2, 2)-1.0/9) > 1e-12 {
		t.Errorf("box blur center = %v", b.At(2, 2))
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := New(7, 5)
	for i := range g.Pix {
		g.Pix[i] = float64(i) / float64(len(g.Pix))
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	r, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.W != 7 || r.H != 5 {
		t.Fatalf("round trip dims %dx%d", r.W, r.H)
	}
	for i := range g.Pix {
		if math.Abs(r.Pix[i]-g.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v vs %v", i, r.Pix[i], g.Pix[i])
		}
	}
}

func TestReadPGMErrors(t *testing.T) {
	if _, err := ReadPGM(bytes.NewBufferString("P2\n2 2\n255\n")); err == nil {
		t.Errorf("expected error for ascii PGM")
	}
	if _, err := ReadPGM(bytes.NewBufferString("P5\n0 2\n255\n")); err == nil {
		t.Errorf("expected error for zero width")
	}
	if _, err := ReadPGM(bytes.NewBufferString("P5\n2 2\n255\nab")); err == nil {
		t.Errorf("expected error for short data")
	}
}

func TestWritePNG(t *testing.T) {
	g := New(4, 4)
	g.Fill(0.5)
	var buf bytes.Buffer
	if err := WritePNG(&buf, g); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Errorf("empty PNG output")
	}
	// PNG signature check.
	if !bytes.HasPrefix(buf.Bytes(), []byte{0x89, 'P', 'N', 'G'}) {
		t.Errorf("missing PNG signature")
	}
}

// Property: Translate then reverse-Translate restores interior pixels.
func TestTranslatePropertyInverse(t *testing.T) {
	f := func(seed int64, dxs, dys uint8) bool {
		dx := int(dxs%4) + 1
		dy := int(dys % 4)
		rng := rand.New(rand.NewSource(seed))
		g := New(16, 16)
		for i := range g.Pix {
			g.Pix[i] = rng.Float64()
		}
		s := g.Translate(dx, dy).Translate(-dx, -dy)
		for y := 5; y < 11; y++ {
			for x := 5; x < 11; x++ {
				if s.At(x, y) != g.At(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(8, 8)
		for i := range g.Pix {
			g.Pix[i] = rng.NormFloat64() * 10
		}
		g.Normalize()
		once := g.Clone()
		g.Normalize()
		for i := range g.Pix {
			if math.Abs(g.Pix[i]-once.Pix[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
