package img

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// WritePGM encodes the image as a binary PGM (P5, 8-bit) stream,
// linearly mapping [0,1] to [0,255] with clamping. PGM is the simplest
// portable export for inspecting simulated SEM slices.
func WritePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	row := make([]byte, g.W)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			row[x] = quantize8(g.At(x, y))
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM decodes a binary PGM (P5) stream produced by WritePGM, mapping
// [0,255] back to [0,1].
func ReadPGM(r io.Reader) (*Gray, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxval int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("img: bad PGM header: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("img: unsupported PGM magic %q", magic)
	}
	if w <= 0 || h <= 0 || maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("img: invalid PGM dimensions %dx%d max %d", w, h, maxval)
	}
	// Single whitespace byte after maxval.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	g := New(w, h)
	buf := make([]byte, w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("img: short PGM pixel data: %w", err)
		}
		for x, b := range buf {
			g.Set(x, y, float64(b)/float64(maxval))
		}
	}
	return g, nil
}

// WritePNG encodes the image as an 8-bit grayscale PNG, mapping [0,1] to
// [0,255] with clamping.
func WritePNG(w io.Writer, g *Gray) error {
	im := image.NewGray(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			im.SetGray(x, y, color.Gray{Y: quantize8(g.At(x, y))})
		}
	}
	return png.Encode(w, im)
}

func quantize8(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}
