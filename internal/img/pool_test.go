package img

import (
	"sync"
	"testing"
)

func TestPoolReuseAndStats(t *testing.T) {
	p := NewPool()
	a := p.Get(8, 4)
	b := p.Get(8, 4)
	if a == b {
		t.Fatal("two outstanding Gets returned the same buffer")
	}
	if got := p.Stats(); got.Hits != 0 || got.Misses != 2 || got.Live != 2 || got.PeakLive != 2 {
		t.Fatalf("after two fresh Gets: %+v", got)
	}
	a.Fill(3.5)
	p.Put(a)
	c := p.Get(8, 4)
	if c != a {
		t.Fatal("Get did not reuse the released same-size buffer")
	}
	for i, v := range c.Pix {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed: Pix[%d]=%v", i, v)
		}
	}
	// A different size must not reuse the 8x4 buffer.
	d := p.Get(4, 8)
	if d == a || d == b {
		t.Fatal("Get reused a buffer of different dimensions")
	}
	got := p.Stats()
	if got.Hits != 1 || got.Misses != 3 || got.Puts != 1 {
		t.Fatalf("stats after reuse: %+v", got)
	}
	if got.Live != 3 || got.PeakLive != 3 {
		t.Fatalf("live accounting: %+v", got)
	}
	p.Put(b)
	p.Put(c)
	p.Put(d)
	if got := p.Stats(); got.Live != 0 || got.PeakLive != 3 {
		t.Fatalf("after releasing all: %+v", got)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	p := NewPool()
	g := p.Get(2, 2)
	p.Put(g)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(g)
}

func TestPoolForeignPutPanics(t *testing.T) {
	p := NewPool()
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign image did not panic")
		}
	}()
	p.Put(New(2, 2))
}

func TestPoolNilSafe(t *testing.T) {
	var p *Pool
	g := p.Get(3, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("nil pool Get: %v", err)
	}
	p.Put(g) // no-op, must not panic
	if got := p.Stats(); got != (PoolStats{}) {
		t.Fatalf("nil pool stats: %+v", got)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g := p.Get(16, 16)
				g.Fill(1)
				p.Put(g)
			}
		}()
	}
	wg.Wait()
	got := p.Stats()
	if got.Live != 0 {
		t.Fatalf("buffers leaked: %+v", got)
	}
	if got.Hits+got.Misses != 8*200 || got.Puts != 8*200 {
		t.Fatalf("lost operations: %+v", got)
	}
}
