package report

import (
	"strings"
	"testing"
)

func TestOptimism(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Optimism(b) })
	for _, want := range []string{"CROW (model)", "REM (model)", "C4", "latch delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimism table missing %q:\n%s", want, out)
		}
	}
}

func TestTiming(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Timing(b) })
	for _, want := range []string{"A4", "OCSA", "ACT latency", "fJ"} {
		if !strings.Contains(out, want) {
			t.Errorf("timing table missing %q:\n%s", want, out)
		}
	}
}

func TestReliability(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Reliability(b) })
	for _, want := range []string{"classic error rate", "OCSA error rate", "0.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("reliability table missing %q:\n%s", want, out)
		}
	}
}

func TestPaperDetail(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return PaperDetail(b, "CoolDRAM") })
	for _, want := range []string{"CoolDRAM", "I1", "I5", "175x", "error", "porting"} {
		if !strings.Contains(out, want) {
			t.Errorf("paper detail missing %q:\n%s", want, out)
		}
	}
	var b strings.Builder
	if err := PaperDetail(&b, "nope"); err == nil {
		t.Errorf("unknown paper should error")
	}
	// A pre-DDR4 paper renders N/A.
	out = render(t, func(b *strings.Builder) error { return PaperDetail(b, "AMBIT") })
	if !strings.Contains(out, "N/A") {
		t.Errorf("AMBIT detail should carry N/A error")
	}
}
