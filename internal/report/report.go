// Package report renders the paper's tables and figures from the dataset
// and analysis packages as aligned text, for the command-line tools and
// the benchmark harness.
package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/analysis"
	"repro/internal/chips"
	"repro/internal/papers"
)

func tw(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// TableI renders the studied-chips table.
func TableI(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "ID\tVendor\tStorage\tYr.\tSize\tDet.\tMATs\tPixl.Res.\tTopology")
	for _, c := range chips.All() {
		mats := "N.V."
		if c.MATsVisible {
			mats = "V."
		}
		fmt.Fprintf(t, "%s\t%s (%s)\t%dGb\t'%02d\t%.0fmm²\t%s\t%s\t%.1f nm\t%s\n",
			c.ID, c.Vendor, c.Gen, c.DensityGb, c.Year%100, c.DieAreaMM2,
			c.Detector, mats, c.PixelResNM, c.Topology)
	}
	return t.Flush()
}

// TableII renders the research-inaccuracies audit.
func TableII(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "Research\tInacc.\tError\tPort. Cost\tDDR\tYr.")
	for _, row := range papers.TableII() {
		inacc := ""
		for i, x := range row.Paper.Inaccuracies {
			if i > 0 {
				inacc += ","
			}
			inacc += fmt.Sprintf("%d", int(x))
		}
		errStr := "N/A"
		if row.ErrorKnown {
			errStr = fmtX(row.Error)
		}
		fmt.Fprintf(t, "%s %s\tI%s\t%s\t%s\t%d\t'%02d\n",
			row.Paper.Name, row.Paper.Ref, inacc, errStr, fmtX(row.PortingCost),
			int(row.Paper.Gen), row.Paper.Year%100)
	}
	return t.Flush()
}

func fmtX(v float64) string {
	if v >= 10 || v <= -10 {
		return fmt.Sprintf("%.0fx", v)
	}
	return fmt.Sprintf("%.2fx", v)
}

// Fig11 renders the latch transistor size series.
func Fig11(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "Source\tElement\tW (nm)\tL (nm)\tW/L")
	for _, p := range analysis.Fig11() {
		tag := ""
		if p.IsModel {
			tag = " (model)"
		}
		fmt.Fprintf(t, "%s%s\t%s\t%.0f\t%.0f\t%.2f\n",
			p.Source, tag, p.Element, p.Dims.W, p.Dims.L, p.Dims.WL())
	}
	return t.Flush()
}

// Fig12 renders the model-inaccuracy statistics.
func Fig12(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "Model\tMetric\tTech\tAvg\tMax\tMax at")
	for _, r := range analysis.Fig12() {
		tech := r.Gen.String()
		if r.Gen == chips.DDR5 {
			tech += " (¥)"
		}
		fmt.Fprintf(t, "%s\t%s\t%s\t%.0f%%\t%.0f%%\t%s %s\n",
			r.Model, r.Metric, tech, 100*r.Avg, 100*r.Max, r.MaxChip, r.MaxElem)
	}
	return t.Flush()
}

// Fig14 renders the per-chip error/porting costs for papers under the
// 10x cutoff.
func Fig14(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "Research\tChip\tKind\tCost")
	for _, p := range papers.Fig14(10) {
		fmt.Fprintf(t, "%s\t%s\t%s\t%s\n", p.Paper, p.Chip, p.Kind, fmtX(p.Value))
	}
	return t.Flush()
}

// AppendixA renders the bitline-shrink analysis for every chip.
func AppendixA(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "Chip\tRegion extension\tChip overhead")
	for _, c := range chips.All() {
		bs := analysis.NewBitlineShrink(c)
		fmt.Fprintf(t, "%s\t%.1f%%\t%.1f%%\n",
			c.ID, 100*bs.RegionExtension(), 100*bs.ChipOverhead())
	}
	return t.Flush()
}

// Dims renders the measured transistor dimensions of every chip.
func Dims(w io.Writer) error {
	t := tw(w)
	fmt.Fprintln(t, "Chip\tElement\tW (nm)\tL (nm)\tW/L\teff. W\teff. L")
	for _, c := range chips.All() {
		for _, e := range chips.Elements() {
			d, ok := c.Dim(e)
			if !ok {
				continue
			}
			eff, _ := c.EffDim(e)
			fmt.Fprintf(t, "%s\t%s\t%.0f\t%.0f\t%.2f\t%.0f\t%.0f\n",
				c.ID, e, d.W, d.L, d.WL(), eff.W, eff.L)
		}
	}
	return t.Flush()
}

// Recommendations renders R1-R4.
func Recommendations(w io.Writer) error {
	for _, r := range analysis.Recommendations() {
		if _, err := fmt.Fprintf(w, "%s (%s): %s\n    %s\n", r.ID, r.Basis, r.Title, r.Detail); err != nil {
			return err
		}
	}
	return nil
}

// Headline renders the two headline numbers of the abstract.
func Headline(w io.Writer) error {
	worst := analysis.WorstModelInaccuracy()
	var worstPaper string
	var worstErr float64
	for _, row := range papers.TableII() {
		if row.ErrorKnown && row.Error > worstErr {
			worstErr = row.Error
			worstPaper = row.Paper.Name
		}
	}
	_, err := fmt.Fprintf(w,
		"Public DRAM models are up to %.1fx inaccurate (%s, %s %s %s).\n"+
			"Existing research has up to %.0fx error (%s).\n",
		worst.Error, worst.Model, worst.Chip, worst.Element, worst.Metric,
		worstErr, worstPaper)
	return err
}
