package report

import (
	"fmt"
	"io"

	"repro/internal/chips"
	"repro/internal/dram"
	"repro/internal/models"
	"repro/internal/sa"
)

// Optimism renders the analog-optimism comparison of Section VI-A: latch
// delay predicted by each public model's nSA geometry next to the
// measured chips'. Oversized models (CROW) latch unrealistically fast.
func Optimism(w io.Writer) error {
	sources := map[string]chips.Dims{}
	for _, m := range models.Public() {
		if d, ok := m.Dim(chips.NSA); ok {
			sources[m.Name+" (model)"] = d
		}
	}
	for _, c := range chips.ByGeneration(chips.DDR4) {
		d, _ := c.Dim(chips.NSA)
		sources[c.ID] = d
	}
	pts, err := sa.ModelOptimism(sources)
	if err != nil {
		return err
	}
	t := tw(w)
	fmt.Fprintln(t, "Source\tnSA W/L\tlatch delay")
	for _, p := range pts {
		fmt.Fprintf(t, "%s\t%.2f\t%.2f ns\n", p.Source, p.WL, p.LatchDelay*1e9)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(higher W/L latches faster: oversized models are optimistic about timing)")
	return err
}

// Reliability renders the retention-reliability sweep: read-error rate
// vs. cell decay for both topologies under Monte-Carlo sense offsets —
// why vendors deploy offset cancellation at small nodes.
func Reliability(w io.Writer) error {
	decays := []int{0, 200, 300, 400, 450, 500, 550}
	const sigma = 30
	const trials = 16
	classic, err := dram.RetentionSweep(chips.Classic, sigma, decays, trials, 1)
	if err != nil {
		return err
	}
	ocsa, err := dram.RetentionSweep(chips.OCSA, sigma, decays, trials, 1)
	if err != nil {
		return err
	}
	t := tw(w)
	fmt.Fprintln(t, "decay (mV)\tclassic error rate\tOCSA error rate")
	for i := range decays {
		fmt.Fprintf(t, "%d\t%.4f\t%.4f\n", decays[i], classic[i].ErrorRate, ocsa[i].ErrorRate)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "(sense offsets sigma %d mV; classic fails from %d mV decay, OCSA cancels them)\n",
		sigma, dram.CriticalDecayMV(classic, 0.001))
	return err
}
