package report

import (
	"strings"
	"testing"
)

func render(t *testing.T, f func(w *strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTableI(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return TableI(b) })
	for _, want := range []string{"A4", "B5", "C5", "OCSA", "classic", "BSE", "16Gb"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 { // header + 6 chips
		t.Errorf("Table I has %d lines", lines)
	}
}

func TestTableII(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return TableII(b) })
	for _, want := range []string{"AMBIT", "CoolDRAM", "REGA", "N/A", "175x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 14 { // header + 13 papers
		t.Errorf("Table II has %d lines", lines)
	}
}

func TestFig11(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Fig11(b) })
	if !strings.Contains(out, "REM (model)") {
		t.Errorf("Fig 11 missing REM model marker")
	}
	if strings.Contains(out, "CROW") {
		t.Errorf("Fig 11 must omit CROW")
	}
}

func TestFig12(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Fig12(b) })
	for _, want := range []string{"CROW", "REM", "width", "length", "W/L", "(¥)", "C4 precharge"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 12 missing %q", want)
		}
	}
}

func TestFig14(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Fig14(b) })
	for _, want := range []string{"CHARM", "porting", "error"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 14 missing %q", want)
		}
	}
	if strings.Contains(out, "CoolDRAM") {
		t.Errorf("Fig 14 must omit always->10x papers")
	}
}

func TestAppendixA(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return AppendixA(b) })
	if !strings.Contains(out, "33.3%") {
		t.Errorf("Appendix A missing the 33%% extension:\n%s", out)
	}
}

func TestDims(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Dims(b) })
	for _, want := range []string{"nSA", "pSA", "isolation", "equalizer"} {
		if !strings.Contains(out, want) {
			t.Errorf("dims table missing %q", want)
		}
	}
}

func TestRecommendations(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Recommendations(b) })
	for _, want := range []string{"R1", "R2", "R3", "R4", "OCSA"} {
		if !strings.Contains(out, want) {
			t.Errorf("recommendations missing %q", want)
		}
	}
}

func TestHeadline(t *testing.T) {
	out := render(t, func(b *strings.Builder) error { return Headline(b) })
	if !strings.Contains(out, "CoolDRAM") || !strings.Contains(out, "CROW") {
		t.Errorf("headline missing key names:\n%s", out)
	}
}
