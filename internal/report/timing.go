package report

import (
	"fmt"
	"io"

	"repro/internal/chips"
	"repro/internal/circuit"
	"repro/internal/dram"
	"repro/internal/sa"
)

// Timing renders the per-chip activation implications of the discovered
// topologies (inaccuracy I5: studies that ignore OCSA mis-estimate
// timings and energy): activation latency, the minimum interruption
// window for out-of-spec majority operations, and the simulated
// activation energy per topology.
func Timing(w io.Writer) error {
	energy := map[chips.Topology]sa.EnergyBreakdown{}
	for _, topo := range []chips.Topology{chips.Classic, chips.OCSA} {
		e, err := sa.ActivationEnergy(topo, circuit.DefaultParams())
		if err != nil {
			return err
		}
		energy[topo] = e
	}
	t := tw(w)
	fmt.Fprintln(t, "Chip\tTopology\tACT latency\tmajority window\tACT energy (sim)")
	for _, c := range chips.All() {
		bank, err := dram.NewBank(dram.DefaultConfig(c.Topology))
		if err != nil {
			return err
		}
		fmt.Fprintf(t, "%s\t%s\t%d ns\t%d ns\t%.0f fJ\n",
			c.ID, c.Topology, bank.ActivateLatencyNS(), bank.MinMajorityWindowNS(),
			energy[c.Topology].TotalJ()*1e15)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "(OCSA chips pay the offset-cancellation and pre-sensing phases on every activation)")
	return err
}
