package report

import (
	"fmt"
	"io"

	"repro/internal/chips"
	"repro/internal/papers"
)

// PaperDetail renders the full Appendix-B evaluation of one audited
// paper: its inaccuracy classes, the original overhead estimate, and the
// realistic per-chip overhead with the resulting error/porting ratio —
// the working a researcher would check when re-evaluating a proposal
// against the measured chips.
func PaperDetail(w io.Writer, name string) error {
	p := papers.ByName(name)
	if p == nil {
		return fmt.Errorf("report: unknown paper %q", name)
	}
	fmt.Fprintf(w, "%s %s (DDR%d, %d)\n", p.Name, p.Ref, int(p.Gen), p.Year)
	for _, i := range p.Inaccuracies {
		fmt.Fprintf(w, "  %s: %s\n", i, i.Describe())
	}
	src := "published"
	if p.DerivedEstimate {
		src = "derived for Table II consistency"
	}
	fmt.Fprintf(w, "  original overhead estimate: %.3f%% (%s)\n\n", 100*p.OriginalOverhead, src)

	t := tw(w)
	fmt.Fprintln(t, "chip\tgen\trealistic overhead\tratio vs estimate\tkind")
	for _, c := range chips.All() {
		ov := p.Overhead(c)
		kind := "porting"
		if c.Gen == p.Gen {
			kind = "error"
		}
		fmt.Fprintf(t, "%s\t%s\t%.3f%%\t%s\t%s\n",
			c.ID, c.Gen, 100*ov, fmtX(ov/p.OriginalOverhead-1), kind)
	}
	if err := t.Flush(); err != nil {
		return err
	}
	if e, ok := p.OverheadError(); ok {
		fmt.Fprintf(w, "Table II error: %s", fmtX(e))
	} else {
		fmt.Fprint(w, "Table II error: N/A (pre-DDR4 proposal)")
	}
	_, err := fmt.Fprintf(w, "   porting cost: %s\n", fmtX(p.PortingCost()))
	return err
}
