package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/chips"
	"repro/internal/papers"
)

// CSV renderers for downstream plotting of the figures.

// TableIICSV writes the research audit as CSV: paper, inaccuracies,
// error, porting cost, generation, year.
func TableIICSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"paper", "inaccuracies", "error_x", "porting_x", "ddr", "year"}); err != nil {
		return err
	}
	for _, row := range papers.TableII() {
		inacc := ""
		for i, x := range row.Paper.Inaccuracies {
			if i > 0 {
				inacc += ";"
			}
			inacc += x.String()
		}
		errStr := ""
		if row.ErrorKnown {
			errStr = strconv.FormatFloat(row.Error, 'f', 4, 64)
		}
		rec := []string{
			row.Paper.Name, inacc, errStr,
			strconv.FormatFloat(row.PortingCost, 'f', 4, 64),
			strconv.Itoa(int(row.Paper.Gen)), strconv.Itoa(row.Paper.Year),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig12CSV writes the model-inaccuracy statistics as CSV.
func Fig12CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "metric", "generation", "avg", "max", "max_chip", "max_element"}); err != nil {
		return err
	}
	for _, r := range analysis.Fig12() {
		rec := []string{
			r.Model, r.Metric.String(), r.Gen.String(),
			strconv.FormatFloat(r.Avg, 'f', 4, 64),
			strconv.FormatFloat(r.Max, 'f', 4, 64),
			r.MaxChip, r.MaxElem.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DimsCSV writes every chip's per-element dimensions as CSV.
func DimsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"chip", "element", "w_nm", "l_nm", "eff_w_nm", "eff_l_nm"}); err != nil {
		return err
	}
	for _, c := range chips.All() {
		for _, e := range chips.Elements() {
			d, ok := c.Dim(e)
			if !ok {
				continue
			}
			eff, _ := c.EffDim(e)
			rec := []string{
				c.ID, e.String(),
				fmt.Sprintf("%.0f", d.W), fmt.Sprintf("%.0f", d.L),
				fmt.Sprintf("%.0f", eff.W), fmt.Sprintf("%.0f", eff.L),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
