package report

import (
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, f func(b *strings.Builder) error) [][]string {
	t.Helper()
	out := render(t, f)
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestTableIICSV(t *testing.T) {
	recs := parseCSV(t, func(b *strings.Builder) error { return TableIICSV(b) })
	if len(recs) != 14 { // header + 13
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "paper" || len(recs[0]) != 6 {
		t.Errorf("header = %v", recs[0])
	}
	// CHARM is pre-DDR4: empty error column.
	for _, r := range recs[1:] {
		if r[0] == "CHARM" && r[2] != "" {
			t.Errorf("CHARM error should be empty (N/A), got %q", r[2])
		}
		if r[0] == "CoolDRAM" && !strings.HasPrefix(r[2], "175") {
			t.Errorf("CoolDRAM error = %q", r[2])
		}
	}
}

func TestFig12CSV(t *testing.T) {
	recs := parseCSV(t, func(b *strings.Builder) error { return Fig12CSV(b) })
	if len(recs) != 13 { // header + 12 rows
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "model" {
		t.Errorf("header = %v", recs[0])
	}
}

func TestDimsCSV(t *testing.T) {
	recs := parseCSV(t, func(b *strings.Builder) error { return DimsCSV(b) })
	// 6 chips x (7 or 6 elements): OCSA 7, classic 7 (equalizer instead
	// of iso+oc => classic 6+... count: OCSA has NSA,PSA,PRE,COL,ISO,OC,LSA=7;
	// classic has NSA,PSA,PRE,EQ,COL,LSA=6. 3*7+3*6 = 39 + header.
	if len(recs) != 40 {
		t.Fatalf("records = %d, want 40", len(recs))
	}
}
