package sem

import (
	"math"
	"testing"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/img"
)

func regionVolume(t testing.TB, id string, voxel int64) *chipgen.MatVolume {
	t.Helper()
	r, err := chipgen.Generate(chipgen.DefaultConfig(chips.ByID(id)))
	if err != nil {
		t.Fatal(err)
	}
	v, err := chipgen.Voxelize(r.Cell, r.Truth.RegionBounds, voxel)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestOptionsValidation(t *testing.T) {
	cases := map[string]func(*Options){
		"bad detector":   func(o *Options) { o.Detector = "X" },
		"zero dwell":     func(o *Options) { o.DwellUS = 0 },
		"zero step":      func(o *Options) { o.SliceStep = 0 },
		"negative blur":  func(o *Options) { o.BlurSigmaPx = -1 },
		"negative drift": func(o *Options) { o.DriftSigmaPx = -1 },
	}
	for name, mutate := range cases {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestIntensityDistinguishesMaterials(t *testing.T) {
	for _, det := range []string{"SE", "BSE"} {
		seen := map[float64]chipgen.Material{}
		for m := chipgen.Material(0); int(m) < chipgen.NumMaterials; m++ {
			v := Intensity(det, m)
			if v < 0 || v > 1 {
				t.Errorf("%s/%s: intensity %v out of range", det, m, v)
			}
			if other, dup := seen[v]; dup {
				t.Errorf("%s: %s and %s share intensity %v", det, m, other, v)
			}
			seen[v] = m
		}
	}
	// BSE has wider metal/oxide contrast than SE (atomic number).
	bse := Intensity("BSE", chipgen.MatM1) - Intensity("BSE", chipgen.MatOxide)
	se := Intensity("SE", chipgen.MatM1) - Intensity("SE", chipgen.MatOxide)
	if bse <= se {
		t.Errorf("BSE metal contrast (%v) should exceed SE (%v)", bse, se)
	}
	if Intensity("nope", chipgen.MatM1) != 0 {
		t.Errorf("unknown detector should read 0")
	}
}

func TestRenderCrossSection(t *testing.T) {
	v := regionVolume(t, "B4", 8)
	g, err := RenderCrossSection(v, v.NZ/2, "BSE")
	if err != nil {
		t.Fatal(err)
	}
	if g.W != v.NX || g.H != v.NY {
		t.Fatalf("render dims %dx%d", g.W, g.H)
	}
	s := g.Statistics()
	if s.Max <= s.Min {
		t.Errorf("flat cross section")
	}
	if _, err := RenderCrossSection(v, -1, "BSE"); err == nil {
		t.Errorf("negative slice should error")
	}
}

func TestAcquireStackShapeAndDeterminism(t *testing.T) {
	v := regionVolume(t, "B4", 8)
	o := DefaultOptions()
	o.SliceStep = 2
	a1, err := AcquireStack(v, o)
	if err != nil {
		t.Fatal(err)
	}
	wantSlices := (v.NZ + 1) / 2
	if len(a1.Slices) != wantSlices {
		t.Errorf("slices = %d, want %d", len(a1.Slices), wantSlices)
	}
	if len(a1.SliceZ) != len(a1.Slices) || len(a1.TrueDrift) != len(a1.Slices) {
		t.Errorf("metadata lengths inconsistent")
	}
	a2, err := AcquireStack(v, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Slices {
		m, _ := img.MSE(a1.Slices[i], a2.Slices[i])
		if m != 0 {
			t.Fatalf("acquisition not deterministic at slice %d", i)
		}
	}
	// Different seed differs.
	o.Seed = 99
	a3, _ := AcquireStack(v, o)
	m, _ := img.MSE(a1.Slices[1], a3.Slices[1])
	if m == 0 {
		t.Errorf("different seeds should differ")
	}
}

func TestAcquireValidatesOptions(t *testing.T) {
	v := regionVolume(t, "B4", 16)
	o := DefaultOptions()
	o.Detector = "Z"
	if _, err := AcquireStack(v, o); err == nil {
		t.Errorf("expected validation error")
	}
}

func TestDwellTimeControlsNoise(t *testing.T) {
	v := regionVolume(t, "B4", 8)
	ideal, err := RenderCrossSection(v, 0, "BSE")
	if err != nil {
		t.Fatal(err)
	}
	snr := func(dwell float64) float64 {
		o := DefaultOptions()
		o.DwellUS = dwell
		o.DriftSigmaPx = 0
		o.ChargeSigma = 0
		o.BlurSigmaPx = 0
		a, err := AcquireStack(v, o)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := img.PSNR(ideal, a.Slices[0])
		return p
	}
	low := snr(1)
	high := snr(12)
	if high <= low+3 {
		t.Errorf("higher dwell should raise PSNR markedly: %.1f vs %.1f dB", low, high)
	}
}

func TestDriftAccumulates(t *testing.T) {
	v := regionVolume(t, "B4", 8)
	o := DefaultOptions()
	o.DriftSigmaPx = 1.5
	a, err := AcquireStack(v, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrueDrift[0] != [2]float64{0, 0} {
		t.Errorf("first slice must be the reference frame")
	}
	last := a.TrueDrift[len(a.TrueDrift)-1]
	if math.Hypot(last[0], last[1]) == 0 {
		t.Errorf("drift should accumulate across the stack")
	}
	o.DriftSigmaPx = 0
	a0, _ := AcquireStack(v, o)
	for _, d := range a0.TrueDrift {
		if d != [2]float64{0, 0} {
			t.Errorf("zero drift option produced drift %v", d)
		}
	}
}

func TestCostHoursScalesWithDwell(t *testing.T) {
	v := regionVolume(t, "B4", 16)
	o := DefaultOptions()
	a, err := AcquireStack(v, o)
	if err != nil {
		t.Fatal(err)
	}
	c1 := a.CostHours()
	if c1 <= 0 {
		t.Errorf("cost must be positive")
	}
	o.DwellUS = 6
	a2, _ := AcquireStack(v, o)
	if a2.CostHours() <= c1 {
		t.Errorf("doubling dwell must raise cost")
	}
	if (&Acquisition{}).CostHours() != 0 {
		t.Errorf("empty acquisition costs nothing")
	}
}

func dieVolume(t testing.TB, id string, voxel int64) (*chipgen.MatVolume, *chipgen.Die) {
	t.Helper()
	cfg := chipgen.DefaultConfig(chips.ByID(id))
	d, err := chipgen.GenerateDie(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := chipgen.Voxelize(d.Cell, d.Cell.Bounds(), voxel)
	if err != nil {
		t.Fatal(err)
	}
	return v, d
}

func TestScanZonesFindsStructure(t *testing.T) {
	v, _ := dieVolume(t, "C4", 8)
	zones, err := ScanZones(v, DefaultOptions(), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Expect logic, mat, logic, mat (row drivers, MAT, SA, MAT).
	var kinds []string
	for _, z := range zones {
		kinds = append(kinds, z.Kind)
	}
	if len(zones) != 4 {
		t.Fatalf("zones = %v", kinds)
	}
	want := []string{"logic", "mat", "logic", "mat"}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("zone %d = %s, want %s (%v)", i, kinds[i], k, kinds)
		}
	}
}

func TestFindROIMatchesTruth(t *testing.T) {
	for _, id := range []string{"C4", "B5"} {
		voxel := int64(8)
		v, d := dieVolume(t, id, voxel)
		roi, zones, err := FindROI(v, DefaultOptions(), 8)
		if err != nil {
			t.Fatalf("%s: %v (%v)", id, err, zones)
		}
		// The ROI must cover the true SA zone within a stride or two.
		bounds := d.Cell.Bounds()
		trueX0 := int((d.SA[0] - bounds.Min.X) / voxel)
		trueX1 := int((d.SA[1] - bounds.Min.X) / voxel)
		tol := 24
		if abs(roi.X0-trueX0) > tol || abs(roi.X1-trueX1) > tol {
			t.Errorf("%s: ROI [%d,%d), want ~[%d,%d)", id, roi.X0, roi.X1, trueX0, trueX1)
		}
		// The SA logic zone is wider than the row-driver zone (Fig. 6).
		var logicWidths []int
		for _, z := range zones {
			if z.Kind == "logic" {
				logicWidths = append(logicWidths, z.WidthVox())
			}
		}
		if len(logicWidths) < 2 {
			t.Fatalf("%s: expected two logic zones, got %v", id, zones)
		}
		if roi.WidthVox() <= logicWidths[0] && roi.X0 != zones[0].X0 {
			t.Errorf("%s: ROI should be the widest logic zone", id)
		}
	}
}

func TestScanZonesValidation(t *testing.T) {
	v := regionVolume(t, "B4", 16)
	if _, err := ScanZones(v, DefaultOptions(), 0); err == nil {
		t.Errorf("zero stride should error")
	}
	o := DefaultOptions()
	o.DwellUS = -1
	if _, err := ScanZones(v, o, 8); err == nil {
		t.Errorf("invalid options should error")
	}
}

func TestSplit1D(t *testing.T) {
	thr, err := split1D([]float64{0.1, 0.12, 0.5, 0.52})
	if err != nil {
		t.Fatal(err)
	}
	if thr < 0.12 || thr > 0.5 {
		t.Errorf("threshold %v not between clusters", thr)
	}
	if _, err := split1D([]float64{1}); err == nil {
		t.Errorf("single value should error")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func BenchmarkAcquireStack(b *testing.B) {
	v := regionVolume(b, "B4", 16)
	o := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AcquireStack(v, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindROI(b *testing.B) {
	v, _ := dieVolume(b, "C4", 16)
	o := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := FindROI(v, o, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlanDwellInvertsNoiseModel(t *testing.T) {
	for _, target := range []float64{0.05, 0.025, 0.01} {
		dwell, err := PlanDwell(target)
		if err != nil {
			t.Fatal(err)
		}
		if got := NoiseSigma(dwell); math.Abs(got-target) > 1e-12 {
			t.Errorf("target %v: planned dwell %v yields sigma %v", target, dwell, got)
		}
	}
	if _, err := PlanDwell(0); err == nil {
		t.Errorf("zero target should fail")
	}
}

func TestPlanCostHours(t *testing.T) {
	// Halving the noise quadruples the dwell and (asymptotically) the
	// pixel time.
	d1, h1, err := PlanCostHours(2000, 2000, 1000, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	d2, h2, err := PlanCostHours(2000, 2000, 1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2/d1-4) > 1e-9 {
		t.Errorf("dwell ratio %v, want 4", d2/d1)
	}
	if h2 <= h1 {
		t.Errorf("lower noise must cost more hours")
	}
	// The paper's scale: a 100 um^2 volumetric scan takes >24 h; a
	// comparable plan lands in the tens of hours.
	_, h, err := PlanCostHours(5000, 5000, 1000, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if h < 24 || h > 200 {
		t.Errorf("large-scan plan %v h, want tens of hours", h)
	}
	if _, _, err := PlanCostHours(0, 1, 1, 0.05); err == nil {
		t.Errorf("zero dims should fail")
	}
}
