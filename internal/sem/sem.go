// Package sem simulates the FIB/SEM volumetric acquisition of Section IV:
// the focused ion beam repeatedly slices the region of interest and a
// scanning electron microscope images each exposed cross section with
// either the secondary-electron (SE) or backscatter-electron (BSE)
// detector. The simulator reproduces the artifact classes the real
// post-processing pipeline must correct: shot noise governed by dwell
// time, beam blur, per-slice intensity variation (charging), and
// cumulative stage drift.
package sem

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/chipgen"
	"repro/internal/img"
)

// Options configures an acquisition.
type Options struct {
	// Detector is "SE" or "BSE"; the two have different material
	// contrast (Section IV: BSE tracks atomic number, SE conductivity).
	Detector string
	// DwellUS is the per-spot dwell time in microseconds; noise falls
	// with sqrt(dwell) but acquisition cost rises linearly.
	DwellUS float64
	// BlurSigmaPx is the beam point-spread sigma in pixels.
	BlurSigmaPx float64
	// DriftSigmaPx is the per-slice stage drift standard deviation in
	// pixels (a cumulative random walk across the stack).
	DriftSigmaPx float64
	// DriftTrendPx adds a systematic per-slice lateral drift: the
	// planar-shear signature of a sample not milled perpendicular to
	// the feature lines, which the post-processing must correct (the
	// paper's final rotation step).
	DriftTrendPx float64
	// ChargeSigma is the per-slice brightness wobble amplitude.
	ChargeSigma float64
	// SliceStep is the FIB slice thickness in voxels (>= 1).
	SliceStep int
	// Seed drives the noise generator; acquisitions are reproducible.
	Seed int64
}

// ClampMax is the detector saturation ceiling: every acquired pixel is
// clamped to [0, ClampMax]. Nominal material intensities stay below 1,
// so values at the ceiling only appear under extreme charging — the
// signature the fault injector and the slice-quality gate key on.
const ClampMax = 1.5

// DefaultOptions returns a realistic mid-quality acquisition: BSE, 3 us
// dwell, one-voxel slices.
func DefaultOptions() Options {
	return Options{
		Detector: "BSE", DwellUS: 3, BlurSigmaPx: 0.7,
		DriftSigmaPx: 0.8, ChargeSigma: 0.02, SliceStep: 1, Seed: 1,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Detector != "SE" && o.Detector != "BSE" {
		return fmt.Errorf("sem: unknown detector %q", o.Detector)
	}
	if o.DwellUS <= 0 {
		return fmt.Errorf("sem: non-positive dwell time %v", o.DwellUS)
	}
	if o.SliceStep < 1 {
		return fmt.Errorf("sem: slice step %d < 1", o.SliceStep)
	}
	if o.BlurSigmaPx < 0 || o.DriftSigmaPx < 0 || o.ChargeSigma < 0 {
		return fmt.Errorf("sem: negative artifact parameter")
	}
	if o.DriftTrendPx < 0 {
		return fmt.Errorf("sem: negative drift trend")
	}
	return nil
}

// Intensity returns the nominal detector response for a material in
// [0, 1]. BSE contrast separates the metal layers strongly (atomic
// number); SE compresses the metal levels but emphasizes the conductive
// silicon features.
func Intensity(detector string, m chipgen.Material) float64 {
	switch detector {
	case "BSE":
		switch m {
		case chipgen.MatOxide:
			return 0.08
		case chipgen.MatCapacitor:
			return 0.70
		case chipgen.MatM2:
			return 0.92
		case chipgen.MatVia:
			return 0.80
		case chipgen.MatM1:
			return 0.88
		case chipgen.MatContact:
			return 0.62
		case chipgen.MatGate:
			return 0.45
		case chipgen.MatActive:
			return 0.30
		}
	case "SE":
		switch m {
		case chipgen.MatOxide:
			return 0.12
		case chipgen.MatCapacitor:
			return 0.55
		case chipgen.MatM2:
			return 0.75
		case chipgen.MatVia:
			return 0.68
		case chipgen.MatM1:
			return 0.72
		case chipgen.MatContact:
			return 0.60
		case chipgen.MatGate:
			return 0.50
		case chipgen.MatActive:
			return 0.42
		}
	}
	return 0
}

// NoiseSigma converts dwell time to the additive noise level: 3 us dwell
// yields sigma 0.05, scaling with 1/sqrt(dwell). Every real slice carries
// at least this much intensity variation, which makes it the physical
// floor the slice-quality gate tests against: a slice with *less*
// variation than the shot noise cannot have been acquired.
func NoiseSigma(dwellUS float64) float64 {
	return 0.05 * math.Sqrt(3/dwellUS)
}

// MaterialPlanes is the ground truth a FIB/SEM acquisition mills
// through, seen one slicing plane at a time. A fully materialized
// *chipgen.MatVolume satisfies it, as does the lazy
// *chipgen.PlaneSource — which is what lets the streaming acquisition
// image arbitrarily deep stacks without holding the whole volume.
type MaterialPlanes interface {
	// Dims returns (nx lateral, ny depth, nz slicing positions).
	Dims() (nx, ny, nz int)
	// PlaneZ returns the material plane at slicing position z, indexed
	// plane[y*nx+x]. The returned slice may be a buffer reused by the
	// next PlaneZ call.
	PlaneZ(z int) ([]chipgen.Material, error)
}

// renderPlane converts one material plane into the ideal SEM image; the
// single shared loop keeps RenderCrossSection and the streaming path
// pixel-identical by construction.
func renderPlane(plane []chipgen.Material, nx, ny int, detector string) *img.Gray {
	g := img.New(nx, ny)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			g.Set(x, y, Intensity(detector, plane[y*nx+x]))
		}
	}
	return g
}

// RenderCrossSection produces the ideal (artifact-free) SEM image of the
// material cross-section at slicing position z.
func RenderCrossSection(v *chipgen.MatVolume, z int, detector string) (*img.Gray, error) {
	if z < 0 || z >= v.NZ {
		return nil, fmt.Errorf("sem: slice z=%d out of [0,%d)", z, v.NZ)
	}
	plane, err := v.PlaneZ(z)
	if err != nil {
		return nil, err
	}
	return renderPlane(plane, v.NX, v.NY, detector), nil
}

// Acquisition is the output of a FIB/SEM run.
type Acquisition struct {
	// Slices are the acquired cross-section images, one per FIB cut.
	Slices []*img.Gray
	// SliceZ records each slice's voxel position along the milling
	// axis.
	SliceZ []int
	// TrueDrift is the cumulative (dx, dy) drift injected into each
	// slice, in pixels — ground truth for scoring alignment.
	TrueDrift [][2]float64
	// Options echoes the acquisition parameters.
	Options Options
}

// AcquireStack mills through the volume along Z, imaging every SliceStep
// voxels with the configured artifacts.
func AcquireStack(v *chipgen.MatVolume, o Options) (*Acquisition, error) {
	return AcquireStackCtx(context.Background(), v, o)
}

// AcquireStackCtx is AcquireStack with cooperative cancellation between
// slices: acquisition is the pipeline's longest stage (the paper's real
// campaigns run >24 h), so a cancelled run must stop at the next FIB cut
// rather than mill the remaining volume.
func AcquireStackCtx(ctx context.Context, v *chipgen.MatVolume, o Options) (*Acquisition, error) {
	acq := &Acquisition{Options: o}
	err := StreamStackCtx(ctx, v, o, func(i, z int, g *img.Gray, drift [2]float64) error {
		acq.Slices = append(acq.Slices, g)
		acq.SliceZ = append(acq.SliceZ, z)
		acq.TrueDrift = append(acq.TrueDrift, drift)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acq, nil
}

// StreamStackCtx runs the FIB/SEM acquisition loop but hands each
// acquired slice to emit (with its index, voxel position, and cumulative
// true drift) instead of accumulating a stack — the bounded-memory
// producer for the streaming reconstruction. The artifact model,
// operation order and RNG consumption are exactly AcquireStackCtx's
// (which delegates here), so the emitted slices are bit-identical to a
// materialized acquisition. A non-nil error from emit aborts the mill
// and is returned as-is.
func StreamStackCtx(ctx context.Context, src MaterialPlanes, o Options, emit func(i, z int, g *img.Gray, drift [2]float64) error) error {
	if err := o.Validate(); err != nil {
		return err
	}
	nx, ny, nz := src.Dims()
	rng := rand.New(rand.NewSource(o.Seed))
	sigma := NoiseSigma(o.DwellUS)
	var dx, dy float64
	n := 0
	for z := 0; z < nz; z += o.SliceStep {
		if err := ctx.Err(); err != nil {
			return err
		}
		plane, err := src.PlaneZ(z)
		if err != nil {
			return err
		}
		g := renderPlane(plane, nx, ny, o.Detector)
		if o.BlurSigmaPx > 0 {
			g = img.GaussianBlur(g, o.BlurSigmaPx)
		}
		// Cumulative stage drift (skip the first slice: it defines the
		// reference frame). Drift is mostly lateral; the vertical
		// component is a quarter of the lateral one.
		if n > 0 && o.DriftSigmaPx > 0 {
			dx += rng.NormFloat64() * o.DriftSigmaPx
			dy += rng.NormFloat64() * o.DriftSigmaPx / 4
		}
		if n > 0 {
			dx += o.DriftTrendPx
		}
		if dx != 0 || dy != 0 {
			g = g.TranslateSubpixel(dx, dy)
		}
		// Charging: per-slice brightness offset plus a mild horizontal
		// gradient.
		offset := rng.NormFloat64() * o.ChargeSigma
		tilt := rng.NormFloat64() * o.ChargeSigma / float64(g.W)
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				val := g.At(x, y) + offset + tilt*float64(x) + rng.NormFloat64()*sigma
				g.Set(x, y, val)
			}
		}
		g.Clamp(0, ClampMax)
		if err := emit(n, z, g, [2]float64{dx, dy}); err != nil {
			return err
		}
		n++
	}
	if n == 0 {
		return fmt.Errorf("sem: volume produced no slices")
	}
	return nil
}

// SliceCount returns how many slices milling nz slicing positions at the
// given step produces — the stack depth a streaming consumer must expect
// before the first slice arrives.
func SliceCount(nz, step int) int {
	if nz <= 0 || step < 1 {
		return 0
	}
	return (nz + step - 1) / step
}

// CostHours estimates the acquisition wall-clock cost in hours: dwell
// time per pixel times pixel count across all slices (the paper reports
// >24 h for the 100 um² scans).
func (a *Acquisition) CostHours() float64 {
	if len(a.Slices) == 0 {
		return 0
	}
	return CostHoursFor(a.Slices[0].W, a.Slices[0].H, len(a.Slices), a.Options.DwellUS)
}

// CostHoursFor is the acquisition cost model on raw dimensions, for
// streaming runs that never hold an Acquisition: dwell time per pixel
// across all slices plus fixed per-slice FIB milling overhead (around
// 90 s), identical to Acquisition.CostHours.
func CostHoursFor(nx, ny, n int, dwellUS float64) float64 {
	px := float64(nx*ny) * float64(n)
	return (px*dwellUS*1e-6 + float64(n)*90) / 3600
}

// PlanDwell returns the dwell time (µs) needed to reach a target additive
// noise level, inverting the shot-noise model: sigma = 0.05*sqrt(3/dwell).
// SEM time is shared and expensive (Section IV), so acquisitions are
// planned against a noise budget rather than maximal quality.
func PlanDwell(targetSigma float64) (float64, error) {
	if targetSigma <= 0 {
		return 0, fmt.Errorf("sem: non-positive noise target %v", targetSigma)
	}
	r := 0.05 / targetSigma
	return 3 * r * r, nil
}

// PlanCostHours estimates the acquisition cost of imaging a region of the
// given voxel dimensions at the dwell that reaches targetSigma.
func PlanCostHours(nx, ny, nSlices int, targetSigma float64) (dwellUS, hours float64, err error) {
	if nx <= 0 || ny <= 0 || nSlices <= 0 {
		return 0, 0, fmt.Errorf("sem: non-positive scan dimensions")
	}
	dwellUS, err = PlanDwell(targetSigma)
	if err != nil {
		return 0, 0, err
	}
	px := float64(nx*ny) * float64(nSlices)
	hours = (px*dwellUS*1e-6 + float64(nSlices)*90) / 3600
	return dwellUS, hours, nil
}
