package sem

import (
	"context"
	"errors"
	"testing"

	"repro/internal/chipgen"
	"repro/internal/chips"
	"repro/internal/img"
)

func testVolume(t *testing.T) *chipgen.MatVolume {
	t.Helper()
	r, err := chipgen.Generate(chipgen.DefaultConfig(chips.ByID("B4")))
	if err != nil {
		t.Fatal(err)
	}
	v, err := chipgen.Voxelize(r.Cell, r.Truth.RegionBounds, 8)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestStreamMatchesAcquire pins the producer's identity contract: the
// streamed slices — whether fed from the materialized volume or from the
// lazy plane source — are bit-identical to AcquireStackCtx's, with the
// same z positions and drift ground truth.
func TestStreamMatchesAcquire(t *testing.T) {
	v := testVolume(t)
	o := DefaultOptions()
	o.SliceStep = 2
	o.DriftTrendPx = 0.05
	want, err := AcquireStack(v, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		src  MaterialPlanes
	}{
		{"volume", v},
		{"lazy", mustPlaneSource(t, v)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			i := 0
			err := StreamStackCtx(context.Background(), tc.src, o, func(idx, z int, g *img.Gray, drift [2]float64) error {
				if idx != i {
					t.Fatalf("emit index %d, want %d", idx, i)
				}
				if z != want.SliceZ[i] {
					t.Fatalf("slice %d at z=%d, want %d", i, z, want.SliceZ[i])
				}
				if drift != want.TrueDrift[i] {
					t.Fatalf("slice %d drift %v, want %v", i, drift, want.TrueDrift[i])
				}
				ref := want.Slices[i]
				if g.W != ref.W || g.H != ref.H {
					t.Fatalf("slice %d is %dx%d, want %dx%d", i, g.W, g.H, ref.W, ref.H)
				}
				for p := range ref.Pix {
					if g.Pix[p] != ref.Pix[p] {
						t.Fatalf("slice %d pixel %d differs: %v vs %v", i, p, g.Pix[p], ref.Pix[p])
					}
				}
				i++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i != len(want.Slices) {
				t.Fatalf("streamed %d slices, want %d", i, len(want.Slices))
			}
			if got := SliceCount(v.NZ, o.SliceStep); got != len(want.Slices) {
				t.Fatalf("SliceCount = %d, want %d", got, len(want.Slices))
			}
		})
	}
}

// mustPlaneSource rebuilds the lazy source for the volume's window.
func mustPlaneSource(t *testing.T, v *chipgen.MatVolume) MaterialPlanes {
	t.Helper()
	r, err := chipgen.Generate(chipgen.DefaultConfig(chips.ByID("B4")))
	if err != nil {
		t.Fatal(err)
	}
	p, err := chipgen.NewPlaneSource(r.Cell, v.BoundsNM, v.VoxelNM)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStreamEmitErrorAborts(t *testing.T) {
	v := testVolume(t)
	sentinel := errors.New("stop here")
	calls := 0
	err := StreamStackCtx(context.Background(), v, DefaultOptions(), func(i, z int, g *img.Gray, drift [2]float64) error {
		calls++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Fatalf("emit called %d times, want 3", calls)
	}
}

func TestStreamHonorsCancellation(t *testing.T) {
	v := testVolume(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := StreamStackCtx(ctx, v, DefaultOptions(), func(i, z int, g *img.Gray, drift [2]float64) error {
		t.Fatal("emit called under cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCostHoursForMatchesMethod(t *testing.T) {
	v := testVolume(t)
	acq, err := AcquireStack(v, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := CostHoursFor(acq.Slices[0].W, acq.Slices[0].H, len(acq.Slices), acq.Options.DwellUS)
	if got != acq.CostHours() {
		t.Fatalf("CostHoursFor = %v, CostHours = %v", got, acq.CostHours())
	}
}

func TestSliceCount(t *testing.T) {
	for _, tc := range []struct{ nz, step, want int }{
		{10, 1, 10}, {10, 2, 5}, {10, 3, 4}, {1, 1, 1}, {0, 1, 0}, {5, 0, 0},
	} {
		if got := SliceCount(tc.nz, tc.step); got != tc.want {
			t.Fatalf("SliceCount(%d,%d) = %d, want %d", tc.nz, tc.step, got, tc.want)
		}
	}
}
