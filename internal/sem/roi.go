package sem

import (
	"fmt"
	"sort"

	"repro/internal/chipgen"
	"repro/internal/img"
	"repro/internal/layout"
)

// Zone is a classified interval of the die strip along the bitline
// direction, in voxel coordinates.
type Zone struct {
	Kind   string // "mat" or "logic"
	X0, X1 int    // [X0, X1) in voxels
}

// WidthVox returns the zone width in voxels.
func (z Zone) WidthVox() int { return z.X1 - z.X0 }

// probe classifies a single blind cross section taken at position x:
// MATs show the bright periodic capacitor texture in the top band of the
// stack, logic does not (Section IV-A: "the area occupied by capacitors
// visually differs from the analog logic").
func probe(v *chipgen.MatVolume, x int, o Options, seed int64) (float64, error) {
	if x < 0 || x >= v.NX {
		return 0, fmt.Errorf("sem: probe x=%d out of [0,%d)", x, v.NX)
	}
	// Render the orthogonal cross section at x (depth x Z plane) with
	// the acquisition's noise level. The beam interaction volume spans
	// a few voxels along the milling normal, so the probe integrates a
	// small window, which also bridges the gaps between capacitor
	// columns in the honeycomb.
	const win = 6
	capBand, _ := chipgen.Band(layout.LayerCapacitor)
	g := img.New(v.NZ, capBand.Y1-capBand.Y0)
	for z := 0; z < v.NZ; z++ {
		for y := capBand.Y0; y < capBand.Y1; y++ {
			var s float64
			n := 0
			for dx := 0; dx < win && x+dx < v.NX; dx++ {
				s += Intensity(o.Detector, v.At(x+dx, y, z))
				n++
			}
			g.Set(z, y-capBand.Y0, s/float64(n))
		}
	}
	noisy := addProbeNoise(g, o, seed)
	return noisy.Statistics().Mean, nil
}

func addProbeNoise(g *img.Gray, o Options, seed int64) *img.Gray {
	out := g.Clone()
	sigma := NoiseSigma(o.DwellUS)
	// Cheap deterministic noise keyed by the seed.
	s := uint64(seed)*2654435761 + 1
	for i := range out.Pix {
		s = s*6364136223846793005 + 1442695040888963407
		u := float64(s>>11) / float64(1<<53)
		out.Pix[i] += (u - 0.5) * 2 * sigma
	}
	return out
}

// ScanZones performs the blind procedure of Fig. 6: cross sections are
// acquired at a stride along the bitline direction and classified into
// MAT and logic zones by the capacitor-band signature, with an adaptive
// (Otsu-style) threshold over the probe features.
func ScanZones(v *chipgen.MatVolume, o Options, strideVox int) ([]Zone, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if strideVox <= 0 {
		return nil, fmt.Errorf("sem: non-positive stride %d", strideVox)
	}
	var xs []int
	var feats []float64
	for x := 0; x < v.NX; x += strideVox {
		f, err := probe(v, x, o, int64(x)+o.Seed)
		if err != nil {
			return nil, err
		}
		xs = append(xs, x)
		feats = append(feats, f)
	}
	thr, err := split1D(feats)
	if err != nil {
		return nil, err
	}
	var zones []Zone
	for i, x := range xs {
		kind := "logic"
		if feats[i] > thr {
			kind = "mat"
		}
		end := x + strideVox
		if end > v.NX {
			end = v.NX
		}
		if n := len(zones); n > 0 && zones[n-1].Kind == kind {
			zones[n-1].X1 = end
			continue
		}
		zones = append(zones, Zone{Kind: kind, X0: x, X1: end})
	}
	return zones, nil
}

// split1D finds a threshold between the two clusters of a bimodal 1-D
// feature set (midpoint of the largest gap between sorted values).
func split1D(vals []float64) (float64, error) {
	if len(vals) < 2 {
		return 0, fmt.Errorf("sem: need at least 2 probes, got %d", len(vals))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	bestGap := -1.0
	thr := sorted[0]
	for i := 1; i < len(sorted); i++ {
		if gap := sorted[i] - sorted[i-1]; gap > bestGap {
			bestGap = gap
			thr = (sorted[i] + sorted[i-1]) / 2
		}
	}
	return thr, nil
}

// FindROI locates the sense-amplifier region: among the logic zones that
// are bounded by MATs on both sides or are the widest, the SA region is
// the widest logic zone (row drivers are smaller — Section IV-A). The
// identification mirrors Fig. 6's W1 vs W2 comparison.
func FindROI(v *chipgen.MatVolume, o Options, strideVox int) (Zone, []Zone, error) {
	zones, err := ScanZones(v, o, strideVox)
	if err != nil {
		return Zone{}, nil, err
	}
	best := Zone{}
	for _, z := range zones {
		if z.Kind == "logic" && z.WidthVox() > best.WidthVox() {
			best = z
		}
	}
	if best.WidthVox() == 0 {
		return Zone{}, zones, fmt.Errorf("sem: no logic zone found")
	}
	return best, zones, nil
}
