#!/bin/sh
# crash-smoke: end-to-end crash/resume validation for the checkpoint
# pipeline (make crash-smoke).
#
#  1. Run a checkpointed extraction to completion — the reference output.
#  2. Start the same run against a fresh store and SIGKILL it
#     mid-pipeline: no cleanup handlers run, exactly like a crash or OOM
#     kill. At least the acquisition checkpoint must have been persisted
#     (writes are atomic: whatever is on disk verifies).
#  3. `hifidram ckpt` must report the survivor store healthy — a torn
#     in-flight temp file never becomes a *.ckpt.
#  4. Tear the aligned checkpoint in half (simulating a torn write that
#     DID reach the final name, e.g. on a non-atomic filesystem):
#     `hifidram ckpt` must now flag exactly that entry corrupt.
#  5. Resume. The corrupt checkpoint must be recomputed, never served
#     (ckpt.corrupt counter), the run must succeed, and its report must
#     be byte-identical to the reference.
#  6. After the resume the store must verify healthy again (healed).
set -eu

GO=${GO:-go}
WORK=$(mktemp -d /tmp/hifidram-crash-smoke.XXXXXX)
trap 'rm -rf "$WORK"' EXIT
BIN="$WORK/hifidram"
CHIP=C4
FLAGS="-chip $CHIP -voxel 8"

$GO build -o "$BIN" ./cmd/hifidram

echo "crash-smoke: reference run"
"$BIN" extract $FLAGS -ckpt-dir "$WORK/ref-ckpt" > "$WORK/ref.txt"

echo "crash-smoke: SIGKILL mid-run"
"$BIN" extract $FLAGS -ckpt-dir "$WORK/ckpt" > /dev/null 2>&1 &
PID=$!
# The acquire checkpoint lands within a couple of seconds; the full run
# takes much longer, so this kill reliably interrupts the pipeline.
while [ ! -s "$(find "$WORK/ckpt" -name 'acquire.ckpt' 2>/dev/null | head -1)" ]; do
    sleep 0.2
    kill -0 $PID 2>/dev/null || { echo "run finished before kill"; break; }
done
kill -KILL $PID 2>/dev/null || true
wait $PID 2>/dev/null || true

echo "crash-smoke: store must verify healthy after SIGKILL"
"$BIN" ckpt -dir "$WORK/ckpt"

echo "crash-smoke: tearing a surviving checkpoint in half"
VICTIM=$(find "$WORK/ckpt" -name '*.ckpt' | sort | head -1)
SIZE=$(wc -c < "$VICTIM")
head -c $((SIZE / 2)) "$VICTIM" > "$VICTIM.torn"
mv "$VICTIM.torn" "$VICTIM"
if "$BIN" ckpt -dir "$WORK/ckpt" > "$WORK/verify.txt" 2>&1; then
    echo "crash-smoke: FAIL — torn checkpoint not detected"
    cat "$WORK/verify.txt"
    exit 1
fi
grep -q CORRUPT "$WORK/verify.txt"

echo "crash-smoke: resume must recompute the torn stage and match the reference"
"$BIN" extract $FLAGS -ckpt-dir "$WORK/ckpt" -resume -stats > "$WORK/resumed.txt" 2> "$WORK/resumed-stats.txt"
grep -q 'ckpt.corrupt' "$WORK/resumed-stats.txt" || {
    echo "crash-smoke: FAIL — ckpt.corrupt counter not reported"
    exit 1
}
if ! diff "$WORK/ref.txt" "$WORK/resumed.txt"; then
    echo "crash-smoke: FAIL — resumed output differs from reference"
    exit 1
fi

echo "crash-smoke: store must be healed after the resume"
"$BIN" ckpt -dir "$WORK/ckpt"

echo "crash-smoke: ok"
