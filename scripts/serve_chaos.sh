#!/bin/sh
# serve-chaos: crash-recovery torture for the reconstruction job service
# (make serve-chaos-smoke).
#
# The contract under test: with -journal, an acknowledged job survives
# anything short of losing the disk. The harness SIGKILLs the server at
# randomized points across many cycles, injects torn journal tails and
# cache overfill between lives, and asserts at the end that every
# acknowledged job reached done exactly once with byte-identical
# artifacts, that `journal fsck` passes after every kill, and that the
# cache honors its byte budget.
#
#  1. Reference phase: run both requests to completion on a clean,
#     chaos-free server; save their artifacts and measure the
#     steady-state cache size (the chaos budget derives from it).
#  2. Chaos loop (CYCLES, default 20): start the server on a shared
#     journal + budgeted cache, submit one of the requests, sleep a
#     deterministic pseudo-random 0.2-1.9s, SIGKILL. Every 5th cycle
#     appends garbage to the journal (a torn tail); every 7th drops
#     oversized junk entries into the cache (overfill). After each kill
#     `hifidram journal fsck` must still pass — torn tails are detected
#     and reported, never fatal and never parsed.
#  3. Drain phase: one final clean start; every acknowledged job ID must
#     reach state done (a 404 or failed/canceled is a lost or mangled
#     job), its artifacts must be byte-identical to the reference, a
#     resubmission must be served from cache (no recompute), the cache's
#     *.ckpt bytes must fit the budget, and SIGTERM must exit 130.
#  4. Failpoint rounds: deterministic ENOSPC and torn-write faults
#     injected at the journal append site itself (-failpoints) prove
#     the ack contract at the fault boundary — a submission the journal
#     could not persist is refused with 503 and never resurrected,
#     while acked jobs survive the faults and a SIGKILL.
set -eu

GO=${GO:-go}
CYCLES=${CYCLES:-20}
WORK=$(mktemp -d /tmp/hifidram-serve-chaos.XXXXXX)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
BIN="$WORK/hifidram"
ADDR="127.0.0.1:18751"
BASE="http://$ADDR"
JOURNAL="$WORK/jobs.journal"
CACHE="$WORK/cache"
REQ_alice='{"chip":"B4","profile":"fast","tenant":"alice"}'
REQ_bob='{"chip":"B4","profile":"fast","tenant":"bob","voxel_nm":12}'

$GO build -o "$BIN" ./cmd/hifidram

# wait_up: poll /readyz until the server reports ready — the listener
# comes up before journal recovery finishes, and submissions before
# ready draw a retryable 503, so gating on /healthz alone would race
# recovery exactly like a load balancer that ignores the readiness
# probe. (sh functions share the caller's variables — poll counters
# must not reuse the cycle counter's name.)
wait_up() {
    up_n=0
    until curl -fsS "$BASE/readyz" > /dev/null 2>&1; do
        up_n=$((up_n + 1))
        [ $up_n -gt 100 ] && { echo "server never came up"; tail -20 "$WORK/server.log"; exit 1; }
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died on startup"; tail -20 "$WORK/server.log"; exit 1; }
        sleep 0.1
    done
}

# wait_done JOB TIMEOUT_POLLS: poll one job to state done.
wait_done() {
    done_n=0
    while :; do
        curl -fsS "$BASE/v1/jobs/$1" > "$WORK/status.json"
        STATE=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$WORK/status.json" | head -1)
        case "$STATE" in
        done) return 0 ;;
        failed | canceled) echo "job $1 ended $STATE:"; cat "$WORK/status.json"; exit 1 ;;
        esac
        done_n=$((done_n + 1))
        [ $done_n -gt "$2" ] && { echo "job $1 never finished (state $STATE)"; exit 1; }
        sleep 0.5
    done
}

# ckpt_bytes: the cache's *.ckpt footprint — the same accounting GC uses
# (stray temps from killed writes are invisible to readers and cleaned
# on a TTL, so they don't count against the budget).
ckpt_bytes() {
    find "$CACHE" -name '*.ckpt' -type f -printf '%s\n' 2>/dev/null | awk '{t+=$1} END{print t+0}'
}

echo "serve-chaos: reference phase (clean run of both requests)"
"$BIN" serve -cache-dir "$CACHE" -jobs 1 "$ADDR" 2> "$WORK/server.log" &
SERVER_PID=$!
wait_up
for tag in alice bob; do
    eval "REQ=\$REQ_$tag"
    curl -fsS -X POST -d "$REQ" "$BASE/v1/jobs" > "$WORK/submit.json"
    JOB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/submit.json" | head -1)
    [ -n "$JOB" ] || { echo "no job id:"; cat "$WORK/submit.json"; exit 1; }
    wait_done "$JOB" 600
    curl -fsS "$BASE/v1/jobs/$JOB/artifacts/report.json" > "$WORK/ref_$tag.report.json"
    curl -fsS "$BASE/v1/jobs/$JOB/artifacts/extracted.gds" > "$WORK/ref_$tag.gds"
done
kill -TERM "$SERVER_PID"; wait "$SERVER_PID" || true
SERVER_PID=
TOTAL=$(ckpt_bytes)
[ "$TOTAL" -gt 0 ] || { echo "reference cache is empty"; exit 1; }
# The budget fits the steady state plus slack; junk injected below must
# be evicted to get back under it.
BUDGET=$((TOTAL + 16384))
echo "serve-chaos: steady-state cache $TOTAL bytes, budget $BUDGET"
rm -rf "$CACHE"

: > "$WORK/acked"
i=1
while [ "$i" -le "$CYCLES" ]; do
    "$BIN" serve -cache-dir "$CACHE" -cache-bytes "$BUDGET" -journal "$JOURNAL" -jobs 1 "$ADDR" 2>> "$WORK/server.log" &
    SERVER_PID=$!
    wait_up
    if [ $((i % 2)) = 0 ]; then tag=bob; else tag=alice; fi
    eval "REQ=\$REQ_$tag"
    CODE=$(curl -sS -o "$WORK/submit.json" -w '%{http_code}' -X POST -d "$REQ" "$BASE/v1/jobs")
    case "$CODE" in
    200 | 202) ;;
    *) echo "cycle $i: submit returned $CODE:"; cat "$WORK/submit.json"; exit 1 ;;
    esac
    JOB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/submit.json" | head -1)
    [ -n "$JOB" ] || { echo "cycle $i: no job id:"; cat "$WORK/submit.json"; exit 1; }
    echo "$JOB $tag" >> "$WORK/acked"
    # Deterministic pseudo-random kill point, 0.2s .. 1.9s after the ack.
    D=$(((i * 7919) % 18 + 2))
    sleep "$((D / 10)).$((D % 10))"
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=
    # Fault injection between lives.
    if [ $((i % 5)) = 2 ]; then
        printf 'HFDJ garbage appended by chaos harness, not a frame' >> "$JOURNAL"
    fi
    if [ $((i % 7)) = 3 ]; then
        mkdir -p "$CACHE/junk/cafef00d"
        dd if=/dev/zero of="$CACHE/junk/cafef00d/overfill.ckpt" bs=1024 count=64 2>/dev/null
        # Backdate it so the LRU sweep targets the junk, not real entries.
        touch -t 200001010000 "$CACHE/junk/cafef00d/overfill.ckpt"
    fi
    # The journal must verify after every kill: valid prefix replayable,
    # torn tail (if any) detected and reported, never fatal.
    "$BIN" journal fsck "$JOURNAL" > "$WORK/fsck.out" || {
        echo "cycle $i: journal fsck failed:"; cat "$WORK/fsck.out"; exit 1
    }
    i=$((i + 1))
done
echo "serve-chaos: $CYCLES kill cycles done; draining"

"$BIN" serve -cache-dir "$CACHE" -cache-bytes "$BUDGET" -journal "$JOURNAL" -jobs 1 "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
# Every acknowledged job must still exist and reach done.
while read -r JOB tag; do
    curl -fsS "$BASE/v1/jobs/$JOB" > /dev/null || {
        echo "acknowledged job $JOB lost after recovery"; exit 1
    }
    wait_done "$JOB" 600
    curl -fsS "$BASE/v1/jobs/$JOB/artifacts/report.json" > "$WORK/got.report.json"
    curl -fsS "$BASE/v1/jobs/$JOB/artifacts/extracted.gds" > "$WORK/got.gds"
    cmp -s "$WORK/ref_$tag.report.json" "$WORK/got.report.json" || {
        echo "job $JOB ($tag): report differs from reference"; exit 1
    }
    cmp -s "$WORK/ref_$tag.gds" "$WORK/got.gds" || {
        echo "job $JOB ($tag): GDS differs from reference"; exit 1
    }
done < "$WORK/acked"

# Exactly-once: a fresh identical submission is served from cache, no
# recompute.
CODE=$(curl -sS -o "$WORK/resubmit.json" -w '%{http_code}' -X POST -d "$REQ_alice" "$BASE/v1/jobs")
[ "$CODE" = "200" ] || { echo "post-chaos resubmit returned $CODE, want 200:"; cat "$WORK/resubmit.json"; exit 1; }
grep -q '"cache_hit": true' "$WORK/resubmit.json" || { echo "post-chaos resubmit recomputed:"; cat "$WORK/resubmit.json"; exit 1; }

# The cache honors its budget (the injected junk was evicted, the live
# entries were not — the byte-identical artifact fetches above prove it).
FINAL=$(ckpt_bytes)
[ "$FINAL" -le "$BUDGET" ] || { echo "cache $FINAL bytes exceeds budget $BUDGET"; exit 1; }
[ -f "$CACHE/junk/cafef00d/overfill.ckpt" ] && { echo "overfill junk survived GC"; exit 1; }

echo "serve-chaos: graceful shutdown"
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=
[ "$RC" = "130" ] || { echo "server exit status $RC, want 130"; tail -20 "$WORK/server.log"; exit 1; }

# Failpoint rounds: inject journal faults deterministically (a fresh
# scratch journal so recovery replay can't consume the armed hit) and
# assert the durability contract at the fault site itself:
#  - ENOSPC on the accept append: the submission gets a clean 503 and
#    is NOT acknowledged; once the fault clears, a resubmission is
#    acked, survives a SIGKILL, and replays to done.
#  - Torn accept append: the half frame is really on disk, the handle
#    is poisoned (even healthy appends refuse until restart), fsck
#    detects the torn tail without failing, and the next life truncates
#    it — recovering exactly the acked jobs.
FPJOURNAL="$WORK/failpoint.journal"
FPCACHE="$WORK/fpcache"
FPREQ='{"chip":"B4","profile":"fast","tenant":"fp"}'

echo "serve-chaos: failpoint round — ENOSPC on journal append"
"$BIN" serve -cache-dir "$FPCACHE" -journal "$FPJOURNAL" -jobs 1 \
    -failpoints 'journal.append=enospc:times=1' "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
CODE=$(curl -sS -o "$WORK/fp1.json" -w '%{http_code}' -X POST -d "$FPREQ" "$BASE/v1/jobs")
[ "$CODE" = "503" ] || { echo "submit under ENOSPC returned $CODE, want 503:"; cat "$WORK/fp1.json"; exit 1; }
CODE=$(curl -sS -o "$WORK/fp2.json" -w '%{http_code}' -X POST -d "$FPREQ" "$BASE/v1/jobs")
[ "$CODE" = "202" ] || { echo "resubmit after fault returned $CODE, want 202:"; cat "$WORK/fp2.json"; exit 1; }
FPJOB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/fp2.json" | head -1)
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
"$BIN" journal fsck "$FPJOURNAL" > /dev/null || { echo "fsck failed after ENOSPC round"; exit 1; }

echo "serve-chaos: failpoint round — torn journal append"
"$BIN" serve -cache-dir "$FPCACHE" -journal "$FPJOURNAL" -jobs 1 \
    -failpoints 'journal.append=torn:times=1' "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
CODE=$(curl -sS -o "$WORK/fp3.json" -w '%{http_code}' -X POST -d '{"chip":"B4","profile":"fast","tenant":"fp","voxel_nm":12}' "$BASE/v1/jobs")
[ "$CODE" = "503" ] || { echo "torn submit returned $CODE, want 503:"; cat "$WORK/fp3.json"; exit 1; }
# The poisoned handle must refuse even healthy submissions until a
# restart re-verifies the file.
CODE=$(curl -sS -o "$WORK/fp4.json" -w '%{http_code}' -X POST -d '{"chip":"B4","profile":"fast","tenant":"fp","voxel_nm":16}' "$BASE/v1/jobs")
[ "$CODE" = "503" ] || { echo "submit on poisoned journal returned $CODE, want 503:"; cat "$WORK/fp4.json"; exit 1; }
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
"$BIN" journal fsck "$FPJOURNAL" > "$WORK/fp.fsck" || { echo "fsck failed after torn round:"; cat "$WORK/fp.fsck"; exit 1; }

echo "serve-chaos: failpoint round — recovery after injected faults"
"$BIN" serve -cache-dir "$FPCACHE" -journal "$FPJOURNAL" -jobs 1 "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
wait_done "$FPJOB" 600
# Exactly one job was ever acknowledged on this journal; the torn and
# refused submissions must not have been resurrected.
curl -fsS "$BASE/v1/jobs" > "$WORK/fpjobs.json"
NJOBS=$(grep -c '"id":' "$WORK/fpjobs.json" || true)
[ "$NJOBS" = "1" ] || { echo "recovered $NJOBS jobs, want 1 (un-acked submissions replayed?):"; cat "$WORK/fpjobs.json"; exit 1; }
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

N=$(wc -l < "$WORK/acked")
echo "serve-chaos: OK ($N acknowledged jobs across $CYCLES kills: none lost, none recomputed, artifacts byte-identical, cache $FINAL <= $BUDGET bytes; journal failpoint rounds: un-acked 503s never resurrected, acked survived ENOSPC and torn tails)"
