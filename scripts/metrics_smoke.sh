#!/bin/sh
# metrics-smoke: end-to-end validation of the service observability
# layer (make metrics-smoke).
#
#  1. Start `hifidram serve` with -metrics, an SLO spec and JSON logs.
#  2. /readyz must report ready (and /healthz must agree).
#  3. Submit a fast-profile job with an X-Request-Id and poll it to
#     done; the correlation ID must be echoed on the response and
#     surfaced in the job status.
#  4. Scrape /metrics and validate it with `hifidram metricscheck
#     -require`: a strict exposition parse plus presence of the labeled
#     latency histograms and the SLO burn-rate gauge.
#  5. `hifidram top -once` must render a fleet frame showing the
#     completed job.
#  6. The JSON access log must carry the request ID.
#  7. Shut down with SIGTERM; the server must exit 130.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d /tmp/hifidram-metrics-smoke.XXXXXX)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
BIN="$WORK/hifidram"
ADDR="127.0.0.1:18760"
BASE="http://$ADDR"
REQ='{"chip":"B4","profile":"fast","tenant":"smoke"}'
CORR="metrics-smoke-corr-1"

$GO build -o "$BIN" ./cmd/hifidram

echo "metrics-smoke: starting server on $ADDR"
"$BIN" serve -jobs 1 -metrics -slo 'default=99/60s' -v -log-format json \
    "$ADDR" 2> "$WORK/server.log" &
SERVER_PID=$!

i=0
until curl -fsS "$BASE/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ $i -gt 50 ] && { echo "server never became ready"; cat "$WORK/server.log"; exit 1; }
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; cat "$WORK/server.log"; exit 1; }
    sleep 0.2
done
curl -fsS "$BASE/healthz" | grep -q '"ready": true' || {
    echo "healthz does not report ready"
    exit 1
}

echo "metrics-smoke: submitting job (corr $CORR)"
curl -fsS -D "$WORK/headers" -X POST -H "X-Request-Id: $CORR" -d "$REQ" \
    "$BASE/v1/jobs" > "$WORK/submit.json"
grep -qi "^X-Request-Id: $CORR" "$WORK/headers" || {
    echo "request ID not echoed:"
    cat "$WORK/headers"
    exit 1
}
grep -q "\"correlation\": \"$CORR\"" "$WORK/submit.json" || {
    echo "correlation ID missing from job status:"
    cat "$WORK/submit.json"
    exit 1
}
JOB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/submit.json" | head -1)
[ -n "$JOB" ] || { echo "no job id in response:"; cat "$WORK/submit.json"; exit 1; }

echo "metrics-smoke: polling $JOB"
i=0
while :; do
    curl -fsS "$BASE/v1/jobs/$JOB" > "$WORK/status.json"
    STATE=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$WORK/status.json" | head -1)
    case "$STATE" in
    done) break ;;
    failed | canceled) echo "job ended $STATE:"; cat "$WORK/status.json"; exit 1 ;;
    esac
    i=$((i + 1))
    [ $i -gt 300 ] && { echo "job never finished"; cat "$WORK/status.json"; exit 1; }
    sleep 1
done

echo "metrics-smoke: validating /metrics"
"$BIN" metricscheck -require \
    'serve_ready,serve_jobs_submitted_total,serve_jobs_done_total,serve_queue_wait_seconds,serve_run_duration_seconds,serve_job_latency_seconds,serve_stage_wall_seconds,serve_slo_burn_rate,serve_slo_error_budget_remaining,img_pool_hits,img_pool_misses,img_pool_peak_live' \
    "$BASE/metrics"
# The per-tenant labels must be on the wire, not just the families.
curl -fsS "$BASE/metrics" > "$WORK/metrics.txt"
grep -q 'serve_job_latency_seconds_count{tenant="smoke"}' "$WORK/metrics.txt" || {
    echo "per-tenant latency series missing from exposition"
    exit 1
}

echo "metrics-smoke: rendering fleet view"
"$BIN" top -once "$ADDR" > "$WORK/top.txt"
cat "$WORK/top.txt"
grep -q 'smoke' "$WORK/top.txt" || { echo "top frame missing tenant row"; exit 1; }
grep -q 'done 1' "$WORK/top.txt" || { echo "top frame missing completion count"; exit 1; }
grep -q 'img pool:' "$WORK/top.txt" || { echo "top frame missing image-pool line"; exit 1; }

echo "metrics-smoke: checking access log correlation"
grep -q "\"req_id\":\"$CORR\"" "$WORK/server.log" || {
    echo "JSON access log missing the request ID:"
    tail -5 "$WORK/server.log"
    exit 1
}

echo "metrics-smoke: shutting down"
kill -TERM "$SERVER_PID"
EXIT=0
wait "$SERVER_PID" || EXIT=$?
SERVER_PID=
[ "$EXIT" -eq 130 ] || { echo "server exit status $EXIT, want 130"; exit 1; }

echo "metrics-smoke: PASS"
