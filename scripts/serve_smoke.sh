#!/bin/sh
# serve-smoke: end-to-end validation of the reconstruction job service
# (make serve-smoke).
#
#  1. Start `hifidram serve` on a free localhost port with a fresh
#     cache directory.
#  2. Submit a fast-profile extraction job over HTTP and poll until it
#     completes.
#  3. Fetch the report and GDS artifacts and checksum them.
#  4. Submit the identical request again: it must complete at submit
#     time (HTTP 200, cache_hit true — never a second computation), and
#     its artifacts must be byte-identical to the first job's.
#  5. /healthz must report exactly one pipeline run for the two jobs.
#  6. Shut the server down with SIGTERM; it must exit 130 (graceful
#     signal exit, same convention as the other commands).
set -eu

GO=${GO:-go}
WORK=$(mktemp -d /tmp/hifidram-serve-smoke.XXXXXX)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
BIN="$WORK/hifidram"
ADDR="127.0.0.1:18750"
BASE="http://$ADDR"
REQ='{"chip":"B4","profile":"fast"}'

$GO build -o "$BIN" ./cmd/hifidram

echo "serve-smoke: starting server on $ADDR"
"$BIN" serve -cache-dir "$WORK/cache" -jobs 1 "$ADDR" 2> "$WORK/server.log" &
SERVER_PID=$!

# Wait for the listener.
i=0
until curl -fsS "$BASE/readyz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ $i -gt 50 ] && { echo "server never came up"; cat "$WORK/server.log"; exit 1; }
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died"; cat "$WORK/server.log"; exit 1; }
    sleep 0.2
done

echo "serve-smoke: submitting job"
curl -fsS -X POST -d "$REQ" "$BASE/v1/jobs" > "$WORK/submit1.json"
JOB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/submit1.json" | head -1)
[ -n "$JOB" ] || { echo "no job id in response:"; cat "$WORK/submit1.json"; exit 1; }

echo "serve-smoke: polling $JOB"
i=0
while :; do
    curl -fsS "$BASE/v1/jobs/$JOB" > "$WORK/status.json"
    STATE=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$WORK/status.json" | head -1)
    case "$STATE" in
    done) break ;;
    failed | canceled) echo "job ended $STATE:"; cat "$WORK/status.json"; exit 1 ;;
    esac
    i=$((i + 1))
    [ $i -gt 600 ] && { echo "job never finished"; cat "$WORK/status.json"; exit 1; }
    sleep 0.5
done

echo "serve-smoke: fetching artifacts"
curl -fsS "$BASE/v1/jobs/$JOB/artifacts/report.json" > "$WORK/report1.json"
curl -fsS "$BASE/v1/jobs/$JOB/artifacts/extracted.gds" > "$WORK/extracted1.gds"
grep -q '"chip": "B4"' "$WORK/report1.json" || { echo "report lacks chip:"; cat "$WORK/report1.json"; exit 1; }
[ -s "$WORK/extracted1.gds" ] || { echo "empty GDS artifact"; exit 1; }

echo "serve-smoke: identical resubmission must be served from cache"
CODE=$(curl -sS -o "$WORK/submit2.json" -w '%{http_code}' -X POST -d "$REQ" "$BASE/v1/jobs")
[ "$CODE" = "200" ] || { echo "resubmit returned $CODE, want 200 (done at submit):"; cat "$WORK/submit2.json"; exit 1; }
grep -q '"state": "done"' "$WORK/submit2.json" || { echo "resubmit not done:"; cat "$WORK/submit2.json"; exit 1; }
grep -q '"cache_hit": true' "$WORK/submit2.json" || { echo "resubmit not a cache hit:"; cat "$WORK/submit2.json"; exit 1; }
JOB2=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$WORK/submit2.json" | head -1)

curl -fsS "$BASE/v1/jobs/$JOB2/artifacts/report.json" > "$WORK/report2.json"
curl -fsS "$BASE/v1/jobs/$JOB2/artifacts/extracted.gds" > "$WORK/extracted2.gds"
cmp -s "$WORK/report1.json" "$WORK/report2.json" || { echo "report artifacts differ between jobs"; exit 1; }
cmp -s "$WORK/extracted1.gds" "$WORK/extracted2.gds" || { echo "GDS artifacts differ between jobs"; exit 1; }

curl -fsS "$BASE/healthz" > "$WORK/health.json"
grep -q '"runs": 1' "$WORK/health.json" || { echo "expected exactly 1 pipeline run:"; cat "$WORK/health.json"; exit 1; }
grep -q '"cache_hits": 1' "$WORK/health.json" || { echo "expected 1 cache hit:"; cat "$WORK/health.json"; exit 1; }

echo "serve-smoke: graceful shutdown"
kill -TERM "$SERVER_PID"
RC=0
wait "$SERVER_PID" || RC=$?
SERVER_PID=
[ "$RC" = "130" ] || { echo "server exit status $RC, want 130"; cat "$WORK/server.log"; exit 1; }

echo "serve-smoke: OK (job computed once, resubmission cache-hit, artifacts byte-identical)"
