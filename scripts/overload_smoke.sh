#!/bin/sh
# overload-smoke: end-to-end validation of the service's overload
# resilience (make overload-smoke). Every round drives a real server
# over real HTTP into a distinct degraded regime using deterministic
# failpoints, and asserts the documented client-visible contract:
#
#  1. Shed round: with -shed-target tiny and the worker wedged by a
#     delay failpoint, a fresh submission is shed with 503 and an
#     honest drain-rate Retry-After; a queued job whose deadline lapses
#     is canceled with a deadline cause without consuming the worker;
#     `top -once` renders the SHEDDING state and `metricscheck
#     -require` proves the overload gauges are exported.
#  2. Brownout round: soft disk pressure (disk-free failpoint between
#     the watermarks) degrades a default-profile submission to the fast
#     profile with the brownout flag set in JobStatus, while an
#     explicit no_brownout opt-out runs unmodified.
#  3. Disk-full round: free space pinned below the hard watermark
#     rejects submissions with 507 + Retry-After while /metrics and
#     /readyz stay alive.
#  4. Breaker round: a per-chip error failpoint fails enough runs to
#     trip the (chip,profile) circuit; the next submission fast-fails
#     503 with Retry-After, other chips are not fenced, and `top -once`
#     shows the open circuit.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d /tmp/hifidram-overload-smoke.XXXXXX)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT
BIN="$WORK/hifidram"
ADDR="127.0.0.1:18752"
BASE="http://$ADDR"

$GO build -o "$BIN" ./cmd/hifidram

wait_up() {
    up_n=0
    until curl -fsS "$BASE/readyz" > /dev/null 2>&1; do
        up_n=$((up_n + 1))
        [ $up_n -gt 100 ] && { echo "server never came up"; tail -20 "$WORK/server.log"; exit 1; }
        kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died on startup"; tail -20 "$WORK/server.log"; exit 1; }
        sleep 0.1
    done
}

stop_server() {
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=
}

# submit BODY OUTFILE [HEADER] -> http code
submit() {
    if [ -n "${3:-}" ]; then
        curl -sS -o "$2" -w '%{http_code}' -H "$3" -X POST -d "$1" "$BASE/v1/jobs"
    else
        curl -sS -o "$2" -w '%{http_code}' -X POST -d "$1" "$BASE/v1/jobs"
    fi
}

job_id() {
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$1" | head -1
}

# wait_state JOB STATE POLLS
wait_state() {
    ws_n=0
    while :; do
        curl -fsS "$BASE/v1/jobs/$1" > "$WORK/status.json"
        STATE=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$WORK/status.json" | head -1)
        [ "$STATE" = "$2" ] && return 0
        case "$STATE" in
        done | failed | canceled)
            echo "job $1 ended $STATE, want $2:"; cat "$WORK/status.json"; exit 1 ;;
        esac
        ws_n=$((ws_n + 1))
        [ $ws_n -gt "$3" ] && { echo "job $1 stuck in $STATE, want $2"; exit 1; }
        sleep 0.5
    done
}

echo "overload-smoke: round 1 — shed + deadline under a wedged worker"
"$BIN" serve -cache-dir "$WORK/cache1" -jobs 1 -shed-target 50ms \
    -failpoints 'serve.run.B4=delay(4s)' "$ADDR" 2> "$WORK/server.log" &
SERVER_PID=$!
wait_up
CODE=$(submit '{"chip":"B4","profile":"fast"}' "$WORK/s1.json")
[ "$CODE" = "202" ] || { echo "submit 1 returned $CODE, want 202:"; cat "$WORK/s1.json"; exit 1; }
S1=$(job_id "$WORK/s1.json")
CODE=$(submit '{"chip":"B4","profile":"fast","voxel_nm":12,"deadline_ms":500}' "$WORK/s2.json")
[ "$CODE" = "202" ] || { echo "submit 2 returned $CODE, want 202:"; cat "$WORK/s2.json"; exit 1; }
S2=$(job_id "$WORK/s2.json")
grep -q '"deadline_ms": 500' "$WORK/s2.json" || { echo "deadline not in JobStatus:"; cat "$WORK/s2.json"; exit 1; }
# Let the queued job age past 2x the shed target, then a fresh leader
# must bounce with an honest Retry-After.
sleep 1
CODE=$(curl -sS -D "$WORK/s3.hdr" -o "$WORK/s3.json" -w '%{http_code}' -X POST \
    -d '{"chip":"B4","profile":"fast","voxel_nm":16}' "$BASE/v1/jobs")
[ "$CODE" = "503" ] || { echo "shed submit returned $CODE, want 503:"; cat "$WORK/s3.json"; exit 1; }
grep -qi '^retry-after:' "$WORK/s3.hdr" || { echo "shed 503 lacks Retry-After:"; cat "$WORK/s3.hdr"; exit 1; }

echo "overload-smoke: overload gauges + top view under shed"
"$BIN" metricscheck -require 'serve_shed_level,serve_shed_total,serve_ready' "$BASE/metrics"
"$BIN" top -once "$ADDR" > "$WORK/top1.txt"
grep -q 'SHEDDING' "$WORK/top1.txt" || { echo "top does not show SHEDDING:"; cat "$WORK/top1.txt"; exit 1; }

# The queued job's 500ms deadline lapsed while it waited; when the
# worker frees it must be shed as canceled(deadline), never run.
wait_state "$S2" canceled 60
grep -q 'deadline' "$WORK/status.json" || { echo "canceled without deadline cause:"; cat "$WORK/status.json"; exit 1; }
"$BIN" metricscheck -require 'serve_deadline_shed_total' "$BASE/metrics"
wait_state "$S1" done 120
stop_server

echo "overload-smoke: round 2 — brownout under soft disk pressure"
"$BIN" serve -cache-dir "$WORK/cache2" -journal "$WORK/j2.journal" -jobs 1 \
    -disk-soft 1000000 -disk-hard 1000 \
    -failpoints 'serve.disk.free=value(500000)' "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
# Wait for the watchdog to register soft pressure.
bp_n=0
until curl -fsS "$BASE/metrics" | grep -q '^serve_disk_pressure 1'; do
    bp_n=$((bp_n + 1))
    [ $bp_n -gt 50 ] && { echo "soft disk pressure never registered"; curl -fsS "$BASE/metrics" | grep disk; exit 1; }
    sleep 0.2
done
CODE=$(submit '{"chip":"B4"}' "$WORK/b1.json")
case "$CODE" in 200 | 202) ;; *) echo "brownout submit returned $CODE:"; cat "$WORK/b1.json"; exit 1 ;; esac
grep -q '"brownout": true' "$WORK/b1.json" || { echo "submission not browned out:"; cat "$WORK/b1.json"; exit 1; }
grep -q '"profile": "fast"' "$WORK/b1.json" || { echo "brownout did not degrade profile:"; cat "$WORK/b1.json"; exit 1; }
B1=$(job_id "$WORK/b1.json")
wait_state "$B1" done 240
CODE=$(submit '{"chip":"B4","no_brownout":true}' "$WORK/b2.json")
case "$CODE" in 200 | 202) ;; *) echo "opt-out submit returned $CODE:"; cat "$WORK/b2.json"; exit 1 ;; esac
grep -q '"brownout": true' "$WORK/b2.json" && { echo "no_brownout ignored:"; cat "$WORK/b2.json"; exit 1; }
"$BIN" metricscheck -require 'serve_brownout_total,serve_disk_free_bytes,serve_disk_pressure' "$BASE/metrics"
stop_server

echo "overload-smoke: round 3 — hard disk watermark rejects with 507, reads stay alive"
"$BIN" serve -cache-dir "$WORK/cache3" -journal "$WORK/j3.journal" -jobs 1 \
    -disk-soft 1000000 -disk-hard 100000 \
    -failpoints 'serve.disk.free=value(50000)' "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
hp_n=0
until curl -fsS "$BASE/metrics" | grep -q '^serve_disk_pressure 2'; do
    hp_n=$((hp_n + 1))
    [ $hp_n -gt 50 ] && { echo "hard disk pressure never registered"; exit 1; }
    sleep 0.2
done
CODE=$(curl -sS -D "$WORK/d1.hdr" -o "$WORK/d1.json" -w '%{http_code}' -X POST \
    -d '{"chip":"B4","profile":"fast"}' "$BASE/v1/jobs")
[ "$CODE" = "507" ] || { echo "full-disk submit returned $CODE, want 507:"; cat "$WORK/d1.json"; exit 1; }
grep -qi '^retry-after:' "$WORK/d1.hdr" || { echo "507 lacks Retry-After:"; cat "$WORK/d1.hdr"; exit 1; }
curl -fsS "$BASE/metrics" > /dev/null || { echo "/metrics down under hard pressure"; exit 1; }
curl -fsS "$BASE/v1/jobs" > /dev/null || { echo "job list down under hard pressure"; exit 1; }
"$BIN" top -once "$ADDR" > "$WORK/top3.txt"
grep -q 'pressure HARD' "$WORK/top3.txt" || { echo "top does not show hard pressure:"; cat "$WORK/top3.txt"; exit 1; }
stop_server

echo "overload-smoke: round 4 — circuit breaker fences a poisoned chip"
"$BIN" serve -cache-dir "$WORK/cache4" -jobs 1 \
    -breaker-threshold 2 -breaker-cooldown 1m \
    -failpoints 'serve.run.B4=error(poisoned chip)' "$ADDR" 2>> "$WORK/server.log" &
SERVER_PID=$!
wait_up
for n in 1 2; do
    CODE=$(submit "{\"chip\":\"B4\",\"profile\":\"fast\",\"voxel_nm\":$((4 + 4 * n))}" "$WORK/f$n.json")
    [ "$CODE" = "202" ] || { echo "poisoned submit $n returned $CODE:"; cat "$WORK/f$n.json"; exit 1; }
    F=$(job_id "$WORK/f$n.json")
    wait_state "$F" failed 60
done
CODE=$(curl -sS -D "$WORK/f3.hdr" -o "$WORK/f3.json" -w '%{http_code}' -X POST \
    -d '{"chip":"B4","profile":"fast","voxel_nm":16}' "$BASE/v1/jobs")
[ "$CODE" = "503" ] || { echo "open-breaker submit returned $CODE, want 503:"; cat "$WORK/f3.json"; exit 1; }
grep -qi '^retry-after:' "$WORK/f3.hdr" || { echo "breaker 503 lacks Retry-After:"; cat "$WORK/f3.hdr"; exit 1; }
# Other chips are not fenced by B4's circuit.
CODE=$(submit '{"chip":"C4","profile":"fast"}' "$WORK/c1.json")
[ "$CODE" = "202" ] || { echo "healthy chip rejected with $CODE:"; cat "$WORK/c1.json"; exit 1; }
"$BIN" metricscheck -require 'serve_breaker_rejected_total,serve_breaker_state' "$BASE/metrics"
"$BIN" top -once "$ADDR" > "$WORK/top4.txt"
grep -q 'B4/fast=OPEN' "$WORK/top4.txt" || { echo "top does not show the open circuit:"; cat "$WORK/top4.txt"; exit 1; }
stop_server

echo "overload-smoke: OK (shed 503 + Retry-After, deadline shed, brownout flag + opt-out, 507 hard watermark, breaker fence + top/metrics views)"
