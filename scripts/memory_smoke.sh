#!/bin/sh
# memory-smoke: end-to-end bounded-memory validation for the streaming
# reconstruction pipeline (make memory-smoke).
#
#  1. Build the core test binary once (both runs share it).
#  2. Reference run: the retained barrier implementation reconstructs a
#     deterministic 384-slice stack in a process with no memory limit
#     and writes a canonical result fingerprint (its peak heap goal on
#     this stack measures ~23 MB; see TestMemorySmoke).
#  3. Streaming run: the pooled streaming pipeline reconstructs the
#     same stack in a process under GOMEMLIMIT=16MiB — a ceiling the
#     barrier path's materialized stacks exceed — and must complete.
#  4. The two fingerprints must match byte for byte: bounding the
#     memory changed nothing about the output.
#
# GOMEMLIMIT is the hard backstop here: if the streaming path held
# live buffers proportional to stack depth, the run would degrade into
# a GC death spiral against the limit instead of finishing in seconds,
# and the timeout (or a wrong fingerprint) fails the smoke.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d /tmp/hifidram-memory-smoke.XXXXXX)
trap 'rm -rf "$WORK"' EXIT
BIN="$WORK/core.test"

$GO test -c -o "$BIN" ./internal/core

echo "memory-smoke: barrier reference (no memory limit)"
HIFIDRAM_MEMORY_SMOKE=barrier \
HIFIDRAM_MEMORY_SMOKE_OUT="$WORK/barrier.fp" \
    "$BIN" -test.run '^TestMemorySmoke$' -test.count=1 -test.timeout=10m > /dev/null

echo "memory-smoke: streaming run under GOMEMLIMIT=16MiB"
GOMEMLIMIT=16MiB \
HIFIDRAM_MEMORY_SMOKE=stream \
HIFIDRAM_MEMORY_SMOKE_OUT="$WORK/stream.fp" \
    "$BIN" -test.run '^TestMemorySmoke$' -test.count=1 -test.timeout=10m > /dev/null

if ! cmp -s "$WORK/barrier.fp" "$WORK/stream.fp"; then
    echo "memory-smoke: FAIL — streaming output diverged from the barrier reference" >&2
    echo "  barrier: $(cat "$WORK/barrier.fp")" >&2
    echo "  stream:  $(cat "$WORK/stream.fp")" >&2
    exit 1
fi
echo "memory-smoke: OK — 384-slice streaming reconstruction under 16MiB, byte-identical ($(cat "$WORK/stream.fp" | cut -c1-16)...)"
